//! Fused, arena-backed, thread-parallel multi-head self-attention.
//!
//! Batches are laid out as `(batch · seq, dim)` row-major tensors with a
//! fixed sequence length per batch; a per-token boolean mask marks real
//! tokens (`true`) vs. padding (`false`). Padding positions are excluded as
//! attention *keys*; padded *query* rows still compute a distribution over
//! the valid keys (their outputs are discarded by masked pooling upstream).
//!
//! # Kernel design
//!
//! The seed implementation materialized three fresh `seq × head_dim`
//! tensors per (batch, head) via `slice_head`, issued tiny per-head
//! matmuls, and ran the whole (batch × head) loop on one thread. This
//! version instead:
//!
//! * **packs** Q/K/V into a head-major contiguous layout in one pass —
//!   block `(b, h)` is a contiguous `seq × head_dim` matrix, so every
//!   per-head product runs on unit-stride slices with zero copies;
//! * **reuses** all scratch (packed operands, the score buffer, the
//!   head-major context, backward gradients) from a per-layer arena
//!   ([`AttnScratch`] plus the recycled [`FwdCache`]) instead of
//!   allocating per call;
//! * **fuses** the `1/√d` scale into the masked-softmax pass over the
//!   contiguous score buffer ([`masked_softmax_row_scaled`]);
//! * **fans out** the (batch × head) loop over workers reserved from the
//!   shared [`crate::threadpool`] budget, in `forward`,
//!   `forward_inference`, and `backward`. Items write disjoint slices and
//!   every per-element reduction stays serial, so results are bitwise
//!   identical at any worker count.
//!
//! The single-threaded oracle lives in [`crate::reference::attention`];
//! `tests/attention_equivalence.rs` asserts equivalence (and 1/2/8-thread
//! parity) against it.

use crate::gemm;
use crate::layers::Linear;
use crate::param::Param;
use crate::tensor::Tensor;
use crate::threadpool;
use rand::rngs::StdRng;
use std::sync::Mutex;

/// Below this `batch · heads · seq² · head_dim` volume the (batch × head)
/// fan-out is not worth a reservation (thread spawn dominates).
const PARALLEL_MIN_VOLUME: usize = 1 << 21;

/// Volume above which one `attn.fused` / `attn.backward` span is emitted
/// per call; smaller calls are visible only through the `attn.*` counters.
const SPAN_MIN_VOLUME: usize = 1 << 21;

/// Metric handles resolved once; attention runs once per block per step,
/// so the registry lock must never sit on this path.
struct AttnMetrics {
    calls: std::sync::Arc<em_obs::metrics::Counter>,
    flops: std::sync::Arc<em_obs::metrics::Counter>,
}

fn attn_metrics() -> &'static AttnMetrics {
    static METRICS: std::sync::OnceLock<AttnMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| AttnMetrics {
        calls: em_obs::metrics::counter("attn.calls"),
        flops: em_obs::metrics::counter("attn.flops"),
    })
}

/// Multi-head self-attention layer.
#[derive(Debug)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    heads: usize,
    dim: usize,
    /// In [`crate::qgemm::InferencePrecision::Int8`] mode the inference
    /// forward runs the masked softmax with a vectorized `e^x` (~1e-6
    /// relative error, far below the int8 quantization noise that mode
    /// already accepts — same contract as the fast GELU in
    /// [`crate::layers::Gelu`]). Training and `Full`-precision inference
    /// always use the exact scalar `exp`, so the fused-vs-reference
    /// bitwise oracle is untouched.
    fast: bool,
    cache: Option<FwdCache>,
    /// Consumed cache recycled by the next training forward, so the packed
    /// Q/K/V and probability buffers are allocated once per layer.
    spare: Option<FwdCache>,
    /// Inference / backward scratch arena. `forward`/`backward` access it
    /// through `get_mut` (no locking); `forward_inference` (`&self`, and
    /// possibly concurrent across evaluation workers) takes it via
    /// `try_lock` and falls back to a fresh local arena under contention.
    scratch: Mutex<AttnScratch>,
}

impl Clone for MultiHeadAttention {
    fn clone(&self) -> Self {
        MultiHeadAttention {
            wq: self.wq.clone(),
            wk: self.wk.clone(),
            wv: self.wv.clone(),
            wo: self.wo.clone(),
            heads: self.heads,
            dim: self.dim,
            fast: self.fast,
            cache: self.cache.clone(),
            spare: None,
            scratch: Mutex::new(AttnScratch::default()),
        }
    }
}

/// Training-forward cache: head-major packed Q/K/V and the softmax
/// probabilities, one `seq × seq` block per (batch, head).
#[derive(Debug, Clone, Default)]
struct FwdCache {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    probs: Vec<f32>,
    batch: usize,
    seq: usize,
}

/// Reusable scratch buffers. During inference they hold packed Q/K/V,
/// scores, and the head-major context; during backward the same buffers
/// hold packed dQ/dK/dV (`q`/`k`/`v`), the packed upstream gradient
/// (`ctx`), and per-worker dA/dS workspace (`scores`).
#[derive(Debug, Default)]
struct AttnScratch {
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    scores: Vec<f32>,
    ctx: Vec<f32>,
}

/// Grows `buf` to exactly `len` elements. Newly grown tail is zeroed; the
/// callers overwrite every element they read, so stale prefixes are fine.
fn ensure_len(buf: &mut Vec<f32>, len: usize) {
    buf.resize(len, 0.0);
}

/// Packs interleaved `(batch·seq, heads·hd)` rows into head-major layout:
/// block `(b, h)` is the contiguous `seq × hd` matrix at offset
/// `((b·heads + h)·seq)·hd`.
fn pack_heads(x: &[f32], batch: usize, seq: usize, heads: usize, hd: usize, out: &mut [f32]) {
    let dim = heads * hd;
    debug_assert_eq!(x.len(), batch * seq * dim);
    debug_assert_eq!(out.len(), x.len());
    for b in 0..batch {
        for t in 0..seq {
            let src = &x[(b * seq + t) * dim..(b * seq + t + 1) * dim];
            for h in 0..heads {
                let dst = ((b * heads + h) * seq + t) * hd;
                out[dst..dst + hd].copy_from_slice(&src[h * hd..(h + 1) * hd]);
            }
        }
    }
}

/// Inverse of [`pack_heads`]: scatters head-major blocks back into the
/// interleaved `(batch·seq, dim)` layout. A plain copy — packing is a
/// permutation, so no accumulation is needed.
fn unpack_heads(packed: &[f32], batch: usize, seq: usize, heads: usize, hd: usize, out: &mut [f32]) {
    let dim = heads * hd;
    debug_assert_eq!(packed.len(), batch * seq * dim);
    debug_assert_eq!(out.len(), packed.len());
    for b in 0..batch {
        for t in 0..seq {
            let dst = &mut out[(b * seq + t) * dim..(b * seq + t + 1) * dim];
            for h in 0..heads {
                let src = ((b * heads + h) * seq + t) * hd;
                dst[h * hd..(h + 1) * hd].copy_from_slice(&packed[src..src + hd]);
            }
        }
    }
}

/// Softmax over `row` restricted to positions where `mask` is `true`;
/// masked positions get probability 0. A fully masked row stays all-zero.
/// (Production paths use the fused scaled variant below; this thin wrapper
/// keeps the semantics unit-testable in isolation.)
#[cfg(test)]
fn masked_softmax_row(row: &mut [f32], mask: &[bool]) {
    masked_softmax_row_scaled(row, mask, 1.0);
}

/// Fused `row *= scale` + masked softmax: the scale multiply and the
/// running max are computed in one traversal of the contiguous score row,
/// bitwise identical to a separate scale pass followed by
/// [`masked_softmax_row`].
fn masked_softmax_row_scaled(row: &mut [f32], mask: &[bool], scale: f32) {
    let mut m = f32::NEG_INFINITY;
    for (v, &keep) in row.iter_mut().zip(mask) {
        *v *= scale;
        if keep && *v > m {
            m = *v;
        }
    }
    if !m.is_finite() {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for (v, &keep) in row.iter_mut().zip(mask) {
        if keep {
            *v = (*v - m).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

/// Scalar form of the fast masked softmax: [`masked_softmax_row_scaled`]
/// with the exp argument clamped to ±30.5 (matching the vectorized kernel's
/// range, so the AVX-512 and portable builds share semantics). Serves as
/// the portable fallback and the over-long-row escape hatch of
/// [`fast_softmax::item`].
#[allow(dead_code)]
fn masked_softmax_row_fast_scalar(row: &mut [f32], mask: &[bool], scale: f32) {
    let mut m = f32::NEG_INFINITY;
    for (v, &keep) in row.iter_mut().zip(mask) {
        *v *= scale;
        if keep && *v > m {
            m = *v;
        }
    }
    if !m.is_finite() {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let mut sum = 0.0;
    for (v, &keep) in row.iter_mut().zip(mask) {
        if keep {
            *v = (*v - m).clamp(-30.5, 30.5).exp();
            sum += *v;
        } else {
            *v = 0.0;
        }
    }
    if sum > 0.0 {
        row.iter_mut().for_each(|v| *v /= sum);
    }
}

/// Vectorized masked softmax for the reduced-precision inference mode:
/// every pass (scale, masked max, `e^clamp(v−m, ±30.5)`, masked sum,
/// normalize) runs 16 lanes wide, with the token mask precompiled to one
/// lane bitmask per 16-key group so the hot row loop never touches the
/// `&[bool]` form. The exp uses the same Cody–Waite + degree-5 polynomial
/// as the fast GELU in `layers::fast_gelu` (duplicated rather than shared
/// so retuning one kernel can never silently shift the other's pinned
/// drift bits); ~1e-6 relative error, far below the int8 drift budget.
///
/// Determinism contract: a key's lane position (`key_index % 16`), the
/// group partials' accumulation order, and every per-lane operation depend
/// only on the row contents and the mask — masked and past-the-end lanes
/// contribute `-inf` to the max and `+0.0` to the tree sums, which are
/// identities. A pair therefore scores the same bits alone, in any length
/// bucket, and at any batch composition — the invariant the serving
/// fast-path tests pin.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod fast_softmax {
    use std::arch::x86_64::*;

    const ROUND_NEAREST: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

    /// Widest supported mask: 64 groups × 16 keys. Longer sequences fall
    /// back to the scalar row loop (no model in the repo comes close).
    const MAX_GROUPS: usize = 64;

    /// `e^v` for `v ∈ [-30.5, 30.5]`; relative error ~2e-6.
    #[inline]
    unsafe fn exp_approx(v: __m512) -> __m512 {
        let n = _mm512_roundscale_ps::<ROUND_NEAREST>(_mm512_mul_ps(
            v,
            _mm512_set1_ps(std::f32::consts::LOG2_E),
        ));
        // r = v − n·ln2, split high/low so r keeps full precision.
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(0.693_359_375), v);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(-2.121_944_4e-4), r);
        // Degree-5 Taylor on |r| ≤ ln2/2.
        let mut p = _mm512_set1_ps(1.0 / 120.0);
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0 / 24.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0 / 6.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(0.5));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0));
        // Scale by 2^n through the exponent field; |n| ≤ 44 keeps the
        // biased exponent inside the finite range.
        let scale = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvtps_epi32(n),
            _mm512_set1_epi32(127),
        )));
        _mm512_mul_ps(p, scale)
    }

    #[inline]
    unsafe fn exp_sub16(x: __m512, m: __m512, cap: __m512) -> __m512 {
        let v = _mm512_sub_ps(x, m);
        let v = _mm512_max_ps(_mm512_min_ps(v, cap), _mm512_sub_ps(_mm512_setzero_ps(), cap));
        exp_approx(v)
    }

    /// [`row`] with the whole row held in `G` zmm registers across all
    /// three passes (one load + one store instead of three of each).
    /// Every arithmetic operation, value, and accumulation order matches
    /// [`row`] exactly, so the two are bitwise interchangeable; rows wider
    /// than 4 groups (seq > 64) stay on the streaming variant.
    unsafe fn row_reg<const G: usize>(row: &mut [f32], lanes: &[u16], scale: f32) {
        let sv = _mm512_set1_ps(scale);
        let len = row.len();
        let full = move |g: usize| -> u16 {
            if (g + 1) * 16 <= len { 0xffff } else { (1u16 << (len - g * 16)) - 1 }
        };
        let mut x = [_mm512_setzero_ps(); G];
        let mut maxv = _mm512_set1_ps(f32::NEG_INFINITY);
        for (g, xg) in x.iter_mut().enumerate() {
            *xg = _mm512_mul_ps(_mm512_maskz_loadu_ps(full(g), row.as_ptr().add(g * 16)), sv);
            maxv = _mm512_mask_max_ps(maxv, lanes[g], maxv, *xg);
        }
        let m = _mm512_reduce_max_ps(maxv);
        if !m.is_finite() {
            row.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        let mv = _mm512_set1_ps(m);
        let cap = _mm512_set1_ps(30.5);
        let mut sum = 0.0f32;
        for (g, xg) in x.iter_mut().enumerate() {
            let e = _mm512_maskz_mov_ps(lanes[g], exp_sub16(*xg, mv, cap));
            *xg = e;
            sum += _mm512_reduce_add_ps(e);
        }
        if sum <= 0.0 {
            for (g, xg) in x.iter().enumerate() {
                _mm512_mask_storeu_ps(row.as_mut_ptr().add(g * 16), full(g), *xg);
            }
            return;
        }
        let dv = _mm512_set1_ps(sum);
        for (g, xg) in x.iter().enumerate() {
            _mm512_mask_storeu_ps(row.as_mut_ptr().add(g * 16), full(g), _mm512_div_ps(*xg, dv));
        }
    }

    /// One softmax row: `row` is the `seq`-wide score row, `lanes` the
    /// per-group keep bitmasks (past-the-end bits already cleared).
    unsafe fn row(row: &mut [f32], lanes: &[u16], scale: f32) {
        let sv = _mm512_set1_ps(scale);
        // Pass 1: scale in place; running per-lane max over keep lanes.
        let mut maxv = _mm512_set1_ps(f32::NEG_INFINITY);
        let mut i = 0usize;
        for &keep in lanes {
            // Masked load: past-the-end lanes read 0.0 and their keep
            // bits are clear, so they never reach the max.
            let x = _mm512_mul_ps(_mm512_maskz_loadu_ps(keep, row.as_ptr().add(i)), sv);
            maxv = _mm512_mask_max_ps(maxv, keep, maxv, x);
            i += 16;
        }
        let m = _mm512_reduce_max_ps(maxv);
        if !m.is_finite() {
            row.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        // Pass 2: exp(clamp(scale·v − m)) on keep lanes, 0 elsewhere;
        // group partial sums accumulate in group order.
        let mv = _mm512_set1_ps(m);
        let cap = _mm512_set1_ps(30.5);
        let mut sum = 0.0f32;
        let mut i = 0usize;
        for (g, &keep) in lanes.iter().enumerate() {
            let full = if (g + 1) * 16 <= row.len() { 0xffff } else { (1u16 << (row.len() - g * 16)) - 1 };
            let x = _mm512_mul_ps(_mm512_maskz_loadu_ps(full, row.as_ptr().add(i)), sv);
            let e = _mm512_maskz_mov_ps(keep, exp_sub16(x, mv, cap));
            _mm512_mask_storeu_ps(row.as_mut_ptr().add(i), full, e);
            sum += _mm512_reduce_add_ps(e);
            i += 16;
        }
        if sum <= 0.0 {
            return;
        }
        // Pass 3: normalize (IEEE-exact per-lane divide).
        let dv = _mm512_set1_ps(sum);
        let mut i = 0usize;
        for (g, _) in lanes.iter().enumerate() {
            let full = if (g + 1) * 16 <= row.len() { 0xffff } else { (1u16 << (row.len() - g * 16)) - 1 };
            let x = _mm512_maskz_loadu_ps(full, row.as_ptr().add(i));
            _mm512_mask_storeu_ps(row.as_mut_ptr().add(i), full, _mm512_div_ps(x, dv));
            i += 16;
        }
    }

    /// Scale + masked softmax over all `seq` rows of one attention item's
    /// `seq × seq` score block. The mask compiles to lane bitmasks once
    /// per item and is reused by every row.
    pub fn item(scores: &mut [f32], seq: usize, mask: &[bool], scale: f32) {
        debug_assert_eq!(scores.len(), seq * seq);
        debug_assert_eq!(mask.len(), seq);
        let ng = seq.div_ceil(16);
        if ng > MAX_GROUPS {
            for t in 0..seq {
                super::masked_softmax_row_fast_scalar(&mut scores[t * seq..(t + 1) * seq], mask, scale);
            }
            return;
        }
        let mut lanes = [0u16; MAX_GROUPS];
        for (g, chunk) in mask.chunks(16).enumerate() {
            let mut bits = 0u16;
            for (i, &keep) in chunk.iter().enumerate() {
                bits |= (keep as u16) << i;
            }
            lanes[g] = bits;
        }
        for t in 0..seq {
            let r = &mut scores[t * seq..(t + 1) * seq];
            unsafe {
                match ng {
                    1 => row_reg::<1>(r, &lanes[..1], scale),
                    2 => row_reg::<2>(r, &lanes[..2], scale),
                    3 => row_reg::<3>(r, &lanes[..3], scale),
                    4 => row_reg::<4>(r, &lanes[..4], scale),
                    _ => row(r, &lanes[..ng], scale),
                }
            }
        }
    }
}

/// Portable fallback: same clamped-exp semantics via libm — no speedup,
/// and (like the AVX-512 path) only reachable in Int8 inference mode.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod fast_softmax {
    pub fn item(scores: &mut [f32], seq: usize, mask: &[bool], scale: f32) {
        for t in 0..seq {
            super::masked_softmax_row_fast_scalar(&mut scores[t * seq..(t + 1) * seq], mask, scale);
        }
    }
}

/// Splits `items` (batch × head blocks) into contiguous per-worker bands
/// and runs `run_band(first_item, items_in_band, band_slices...)` on each,
/// where each band receives disjoint `&mut` sub-slices of every buffer in
/// `bufs` (sliced at `per_item[i] * item` element granularity). The last
/// band runs on the calling thread.
fn fan_out_items<F>(items: usize, nworkers: usize, bufs: Vec<&mut [f32]>, per_item: &[usize], run_band: F)
where
    F: Fn(usize, usize, Vec<&mut [f32]>) + Sync,
{
    debug_assert_eq!(bufs.len(), per_item.len());
    let base = items / nworkers;
    let rem = items % nworkers;
    std::thread::scope(|scope| {
        let run_band = &run_band;
        let mut rest = bufs;
        let mut item0 = 0usize;
        for w in 0..nworkers {
            let items_here = base + usize::from(w < rem);
            let mut band = Vec::with_capacity(rest.len());
            let mut tails = Vec::with_capacity(rest.len());
            for (buf, &stride) in rest.into_iter().zip(per_item) {
                let (head, tail) = buf.split_at_mut(items_here * stride);
                band.push(head);
                tails.push(tail);
            }
            rest = tails;
            let first = item0;
            if w + 1 == nworkers {
                run_band(first, items_here, band);
            } else {
                scope.spawn(move || run_band(first, items_here, band));
            }
            item0 += items_here;
        }
    });
}

/// Scaled masked attention over head-major packed Q/K/V: fills `scores`
/// with the softmax probabilities (one `seq × seq` block per item) and
/// `ctx` with the head-major context (`P·V`, one `seq × hd` block per
/// item). Fan-out over (batch × head) items draws from the shared
/// threadpool budget; items write disjoint slices and each per-element
/// reduction is serial, so output is bitwise identical at any worker
/// count. `fast` selects the vectorized-exp softmax (Int8 inference only;
/// see [`masked_softmax_row_scaled_fast`]).
#[allow(clippy::too_many_arguments)]
fn attend_packed(
    batch: usize,
    seq: usize,
    heads: usize,
    hd: usize,
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: &[bool],
    scores: &mut [f32],
    ctx: &mut [f32],
    fast: bool,
) {
    let items = batch * heads;
    let scale = 1.0 / (hd as f32).sqrt();
    let volume = items * seq * seq * hd;
    if em_obs::capture_enabled() {
        let m = attn_metrics();
        m.calls.inc();
        // Two GEMMs (QKᵀ and P·V), one multiply + one add each.
        m.flops.add(4 * volume as u64);
    }
    let _span = if volume >= SPAN_MIN_VOLUME {
        em_obs::span!("attn.fused", batch = batch, heads = heads, seq = seq)
    } else {
        em_obs::trace::SpanGuard::disabled()
    };

    let run_item = |idx: usize, sc: &mut [f32], cx: &mut [f32]| {
        let off = idx * seq * hd;
        let qb = &q[off..off + seq * hd];
        let kb = &k[off..off + seq * hd];
        let vb = &v[off..off + seq * hd];
        let bmask = &mask[(idx / heads) * seq..(idx / heads + 1) * seq];
        // Scores = Q·Kᵀ straight into the arena block, then scale + masked
        // softmax fused over the contiguous rows, then context = P·V. The
        // fast (Int8 inference) variant swaps in the FMA-contracted GEMM
        // and the vectorized softmax; the exact path is the bitwise
        // contract the fused-vs-reference oracle pins.
        if fast {
            gemm::gemm_fast(seq, hd, seq, qb, kb, true, sc);
            fast_softmax::item(sc, seq, bmask, scale);
            gemm::gemm_fast(seq, seq, hd, sc, vb, false, cx);
        } else {
            gemm::gemm(seq, hd, seq, qb, false, kb, true, sc);
            for t in 0..seq {
                masked_softmax_row_scaled(&mut sc[t * seq..(t + 1) * seq], bmask, scale);
            }
            gemm::gemm(seq, seq, hd, sc, false, vb, false, cx);
        }
    };

    let reservation = if volume >= PARALLEL_MIN_VOLUME && items > 1 {
        threadpool::reserve_workers(items - 1)
    } else {
        threadpool::reserve_workers(0)
    };
    let nworkers = reservation.total().min(items).max(1);
    if nworkers <= 1 {
        for idx in 0..items {
            let (sc, cx) = (
                &mut scores[idx * seq * seq..(idx + 1) * seq * seq],
                &mut ctx[idx * seq * hd..(idx + 1) * seq * hd],
            );
            run_item(idx, sc, cx);
        }
        return;
    }
    fan_out_items(
        items,
        nworkers,
        vec![scores, ctx],
        &[seq * seq, seq * hd],
        |first, count, mut band| {
            let (sc_band, cx_band) = {
                let cx = band.pop().unwrap();
                let sc = band.pop().unwrap();
                (sc, cx)
            };
            for i in 0..count {
                run_item(
                    first + i,
                    &mut sc_band[i * seq * seq..(i + 1) * seq * seq],
                    &mut cx_band[i * seq * hd..(i + 1) * seq * hd],
                );
            }
        },
    );
}

/// Backward through the attention core for one (batch, head) item.
/// `p` holds the cached softmax probabilities, `dob` the packed upstream
/// gradient; writes dQ/dK/dV blocks and uses `da`/`ds` as workspace.
#[allow(clippy::too_many_arguments)]
fn backward_item(
    seq: usize,
    hd: usize,
    scale: f32,
    qb: &[f32],
    kb: &[f32],
    vb: &[f32],
    p: &[f32],
    dob: &[f32],
    dq: &mut [f32],
    dk: &mut [f32],
    dv: &mut [f32],
    da: &mut [f32],
    ds: &mut [f32],
) {
    // dA = dO·Vᵀ ; dV = Pᵀ·dO
    gemm::gemm(seq, hd, seq, dob, false, vb, true, da);
    gemm::gemm(seq, seq, hd, p, true, dob, false, dv);
    // Softmax backward per row: dS = P ⊙ (dA - rowsum(dA ⊙ P)), then the
    // deferred 1/√d scale.
    for t in 0..seq {
        let prow = &p[t * seq..(t + 1) * seq];
        let darow = &da[t * seq..(t + 1) * seq];
        let inner: f32 = prow.iter().zip(darow).map(|(x, y)| x * y).sum();
        let dsrow = &mut ds[t * seq..(t + 1) * seq];
        for j in 0..seq {
            dsrow[j] = prow[j] * (darow[j] - inner);
        }
    }
    ds.iter_mut().for_each(|x| *x *= scale);
    // dQ = dS·K ; dK = dSᵀ·Q
    gemm::gemm(seq, seq, hd, ds, false, kb, false, dq);
    gemm::gemm(seq, seq, hd, ds, true, qb, false, dk);
}

/// Standalone fused attention core on interleaved `(batch·seq, dim)`
/// Q/K/V (post-projection): packs, attends, unpacks, and returns the
/// concatenated head outputs (pre output-projection). This is the
/// equivalence/bench entry point mirroring
/// [`crate::reference::attention`]; the layer paths below reuse arenas
/// instead of allocating.
pub fn fused_attention(q: &Tensor, k: &Tensor, v: &Tensor, seq: usize, heads: usize, mask: &[bool]) -> Tensor {
    assert_eq!(q.rows() % seq, 0, "rows must be a multiple of seq");
    assert!(q.cols().is_multiple_of(heads), "dim must be divisible by heads");
    assert_eq!(mask.len(), q.rows(), "mask must cover every token");
    let batch = q.rows() / seq;
    let dim = q.cols();
    let hd = dim / heads;
    let mut qp = vec![0.0f32; batch * seq * dim];
    let mut kp = vec![0.0f32; batch * seq * dim];
    let mut vp = vec![0.0f32; batch * seq * dim];
    pack_heads(q.data(), batch, seq, heads, hd, &mut qp);
    pack_heads(k.data(), batch, seq, heads, hd, &mut kp);
    pack_heads(v.data(), batch, seq, heads, hd, &mut vp);
    let mut scores = vec![0.0f32; batch * heads * seq * seq];
    let mut ctx = vec![0.0f32; batch * seq * dim];
    attend_packed(batch, seq, heads, hd, &qp, &kp, &vp, mask, &mut scores, &mut ctx, false);
    let mut out = Tensor::zeros(batch * seq, dim);
    unpack_heads(&ctx, batch, seq, heads, hd, out.data_mut());
    out
}

impl MultiHeadAttention {
    /// New attention layer over `dim`-dimensional tokens with `heads` heads.
    ///
    /// # Panics
    /// Panics if `dim` is not divisible by `heads`.
    pub fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert!(dim.is_multiple_of(heads), "dim must be divisible by heads");
        MultiHeadAttention {
            wq: Linear::new(dim, dim, rng),
            wk: Linear::new(dim, dim, rng),
            wv: Linear::new(dim, dim, rng),
            wo: Linear::new(dim, dim, rng),
            heads,
            dim,
            fast: false,
            cache: None,
            spare: None,
            scratch: Mutex::new(AttnScratch::default()),
        }
    }

    /// Forward pass. `x` is `(batch·seq, dim)`, `mask` has one entry per
    /// token row. Caches intermediates for [`Self::backward`]; the cache
    /// buffers are recycled from the previous step's consumed cache.
    pub fn forward(&mut self, x: &Tensor, seq: usize, mask: &[bool]) -> Tensor {
        assert_eq!(x.rows() % seq, 0, "rows must be a multiple of seq");
        assert_eq!(mask.len(), x.rows(), "mask must cover every token");
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let batch = x.rows() / seq;
        let hd = self.dim / self.heads;
        let n = batch * seq * self.dim;

        let mut cache = self.spare.take().unwrap_or_default();
        ensure_len(&mut cache.q, n);
        ensure_len(&mut cache.k, n);
        ensure_len(&mut cache.v, n);
        ensure_len(&mut cache.probs, batch * self.heads * seq * seq);
        pack_heads(q.data(), batch, seq, self.heads, hd, &mut cache.q);
        pack_heads(k.data(), batch, seq, self.heads, hd, &mut cache.k);
        pack_heads(v.data(), batch, seq, self.heads, hd, &mut cache.v);

        let scratch = self.scratch.get_mut().expect("attention scratch poisoned");
        ensure_len(&mut scratch.ctx, n);
        attend_packed(
            batch,
            seq,
            self.heads,
            hd,
            &cache.q,
            &cache.k,
            &cache.v,
            mask,
            &mut cache.probs,
            &mut scratch.ctx,
            false,
        );
        let mut concat = Tensor::zeros(x.rows(), self.dim);
        unpack_heads(&scratch.ctx, batch, seq, self.heads, hd, concat.data_mut());
        let out = self.wo.forward(&concat);
        cache.batch = batch;
        cache.seq = seq;
        self.cache = Some(cache);
        out
    }

    /// Inference-only forward (no caching). Scratch comes from the layer
    /// arena when uncontended; concurrent callers (parallel evaluation
    /// workers sharing one model) fall back to a local arena.
    pub fn forward_inference(&self, x: &Tensor, seq: usize, mask: &[bool]) -> Tensor {
        assert_eq!(x.rows() % seq, 0, "rows must be a multiple of seq");
        assert_eq!(mask.len(), x.rows(), "mask must cover every token");
        // Q/K/V project the same rows: quantize the activations once.
        let mut qx = None;
        let q = self.wq.forward_inference_shared(x, &mut qx);
        let k = self.wk.forward_inference_shared(x, &mut qx);
        let v = self.wv.forward_inference_shared(x, &mut qx);
        self.forward_inference_precomputed(&q, &k, &v, seq, mask)
    }

    /// Switches all four projection layers' inference numeric mode, plus
    /// the attention core's softmax (vectorized exp in Int8 mode — see the
    /// `fast` field; training `forward` always stays on the exact path).
    pub fn set_precision(&mut self, precision: crate::qgemm::InferencePrecision) {
        self.wq.set_precision(precision);
        self.wk.set_precision(precision);
        self.wv.set_precision(precision);
        self.wo.set_precision(precision);
        self.fast = matches!(precision, crate::qgemm::InferencePrecision::Int8);
    }

    /// Everything after the Q/K/V projections: pack heads, fused masked
    /// attention, unpack, output projection.
    ///
    /// Split out so callers that cache projections of shared token rows
    /// (em-lm's demonstration-prefix cache) can stitch cached and fresh
    /// rows and resume here. The projections are per-row operations, so a
    /// stitched buffer is bitwise identical to projecting the full
    /// sequence in one call.
    pub fn forward_inference_precomputed(
        &self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        seq: usize,
        mask: &[bool],
    ) -> Tensor {
        assert_eq!(q.rows() % seq, 0, "rows must be a multiple of seq");
        assert_eq!(mask.len(), q.rows(), "mask must cover every token");
        assert_eq!(q.rows(), k.rows());
        assert_eq!(q.rows(), v.rows());
        let batch = q.rows() / seq;
        let hd = self.dim / self.heads;
        let n = batch * seq * self.dim;

        // Reduced-precision serving path: the strided FMA kernels read the
        // Q/K/V head blocks straight out of the interleaved tensors and
        // write the context into the concatenated layout, skipping the
        // pack/unpack permutation passes entirely. Bitwise identical to
        // the packed fast path (addressing change only), so the bucket /
        // batch invariance contract carries over; the packed fan-out path
        // keeps serving volumes large enough to parallelize.
        let volume = batch * self.heads * seq * seq * hd;
        if self.fast && volume < PARALLEL_MIN_VOLUME {
            return self.fast_attend_unpacked(q, k, v, batch, seq, hd, mask);
        }

        let mut fallback;
        let mut guard;
        let s: &mut AttnScratch = match self.scratch.try_lock() {
            Ok(g) => {
                guard = g;
                &mut guard
            }
            Err(_) => {
                fallback = AttnScratch::default();
                &mut fallback
            }
        };
        ensure_len(&mut s.q, n);
        ensure_len(&mut s.k, n);
        ensure_len(&mut s.v, n);
        ensure_len(&mut s.scores, batch * self.heads * seq * seq);
        ensure_len(&mut s.ctx, n);
        pack_heads(q.data(), batch, seq, self.heads, hd, &mut s.q);
        pack_heads(k.data(), batch, seq, self.heads, hd, &mut s.k);
        pack_heads(v.data(), batch, seq, self.heads, hd, &mut s.v);
        attend_packed(
            batch, seq, self.heads, hd, &s.q, &s.k, &s.v, mask, &mut s.scores, &mut s.ctx, self.fast,
        );
        let mut concat = Tensor::zeros(q.rows(), self.dim);
        unpack_heads(&s.ctx, batch, seq, self.heads, hd, concat.data_mut());
        self.wo.forward_inference(&concat)
    }

    /// Sequential attention core over the interleaved layout (see the
    /// dispatch comment in [`Self::forward_inference_precomputed`]); only
    /// the `seq × seq` score block is scratch.
    fn fast_attend_unpacked(
        &self,
        q: &Tensor,
        k: &Tensor,
        v: &Tensor,
        batch: usize,
        seq: usize,
        hd: usize,
        mask: &[bool],
    ) -> Tensor {
        if em_obs::capture_enabled() {
            let m = attn_metrics();
            m.calls.inc();
            m.flops.add(4 * (batch * self.heads * seq * seq * hd) as u64);
        }
        let mut fallback;
        let mut guard;
        let s: &mut AttnScratch = match self.scratch.try_lock() {
            Ok(g) => {
                guard = g;
                &mut guard
            }
            Err(_) => {
                fallback = AttnScratch::default();
                &mut fallback
            }
        };
        ensure_len(&mut s.scores, seq * seq);
        let scores = &mut s.scores[..seq * seq];
        let scale = 1.0 / (hd as f32).sqrt();
        let dim = self.dim;
        let (qd, kd, vd) = (q.data(), k.data(), v.data());
        let mut concat = Tensor::zeros(batch * seq, dim);
        let cd = concat.data_mut();
        for b in 0..batch {
            let bmask = &mask[b * seq..(b + 1) * seq];
            for h in 0..self.heads {
                let off = b * seq * dim + h * hd;
                gemm::gemm_fast_strided(seq, hd, seq, &qd[off..], dim, &kd[off..], dim, true, scores, seq);
                fast_softmax::item(scores, seq, bmask, scale);
                gemm::gemm_fast_strided(seq, seq, hd, scores, seq, &vd[off..], dim, false, &mut cd[off..], dim);
            }
        }
        self.wo.forward_inference(&concat)
    }

    /// Backward pass: accumulates all projection gradients, returns dX.
    /// The (batch × head) loop fans out over the shared thread budget with
    /// per-worker dA/dS workspace from the arena; the consumed forward
    /// cache is recycled for the next step.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.take().expect("backward called before forward");
        let hd = self.dim / self.heads;
        let heads = self.heads;
        let (batch, seq) = (cache.batch, cache.seq);
        let scale = 1.0 / (hd as f32).sqrt();
        let items = batch * heads;
        let n = batch * seq * self.dim;
        let volume = items * seq * seq * hd;

        // Through the output projection.
        let d_concat = self.wo.backward(grad_out);

        if em_obs::capture_enabled() {
            let m = attn_metrics();
            m.calls.inc();
            // Four GEMM-shaped products (dA, dV, dQ, dK) plus the softmax
            // backward sweep.
            m.flops.add(9 * volume as u64);
        }
        let _span = if volume >= SPAN_MIN_VOLUME {
            em_obs::span!("attn.backward", batch = batch, heads = heads, seq = seq)
        } else {
            em_obs::trace::SpanGuard::disabled()
        };

        let scratch = self.scratch.get_mut().expect("attention scratch poisoned");
        let AttnScratch {
            q: dq_buf,
            k: dk_buf,
            v: dv_buf,
            scores: work_buf,
            ctx: dpack_buf,
        } = scratch;
        ensure_len(dpack_buf, n);
        pack_heads(d_concat.data(), batch, seq, heads, hd, dpack_buf);
        ensure_len(dq_buf, n);
        ensure_len(dk_buf, n);
        ensure_len(dv_buf, n);

        let reservation = if volume >= PARALLEL_MIN_VOLUME && items > 1 {
            threadpool::reserve_workers(items - 1)
        } else {
            threadpool::reserve_workers(0)
        };
        let nworkers = reservation.total().min(items).max(1);
        // Per-worker dA + dS workspace, carved from one arena buffer.
        ensure_len(work_buf, nworkers * 2 * seq * seq);

        let run_item =
            |idx: usize, dq: &mut [f32], dk: &mut [f32], dv: &mut [f32], da: &mut [f32], ds: &mut [f32]| {
                let off = idx * seq * hd;
                backward_item(
                    seq,
                    hd,
                    scale,
                    &cache.q[off..off + seq * hd],
                    &cache.k[off..off + seq * hd],
                    &cache.v[off..off + seq * hd],
                    &cache.probs[idx * seq * seq..(idx + 1) * seq * seq],
                    &dpack_buf[off..off + seq * hd],
                    dq,
                    dk,
                    dv,
                    da,
                    ds,
                );
            };

        if nworkers <= 1 {
            let (da, ds) = work_buf.split_at_mut(seq * seq);
            for idx in 0..items {
                let off = idx * seq * hd;
                let dq = &mut dq_buf[off..off + seq * hd];
                let dk = &mut dk_buf[off..off + seq * hd];
                let dv = &mut dv_buf[off..off + seq * hd];
                run_item(idx, dq, dk, dv, &mut da[..seq * seq], &mut ds[..seq * seq]);
            }
        } else {
            let base = items / nworkers;
            let rem = items % nworkers;
            std::thread::scope(|scope| {
                let run_item = &run_item;
                let mut dq_rest: &mut [f32] = dq_buf;
                let mut dk_rest: &mut [f32] = dk_buf;
                let mut dv_rest: &mut [f32] = dv_buf;
                let mut work_rest: &mut [f32] = work_buf;
                let mut item0 = 0usize;
                for w in 0..nworkers {
                    let items_here = base + usize::from(w < rem);
                    let (dq_band, dq_tail) = dq_rest.split_at_mut(items_here * seq * hd);
                    let (dk_band, dk_tail) = dk_rest.split_at_mut(items_here * seq * hd);
                    let (dv_band, dv_tail) = dv_rest.split_at_mut(items_here * seq * hd);
                    let (work, work_tail) = work_rest.split_at_mut(2 * seq * seq);
                    dq_rest = dq_tail;
                    dk_rest = dk_tail;
                    dv_rest = dv_tail;
                    work_rest = work_tail;
                    let first = item0;
                    let mut run = move || {
                        let (da, ds) = work.split_at_mut(seq * seq);
                        for i in 0..items_here {
                            let off = i * seq * hd;
                            run_item(
                                first + i,
                                &mut dq_band[off..off + seq * hd],
                                &mut dk_band[off..off + seq * hd],
                                &mut dv_band[off..off + seq * hd],
                                da,
                                ds,
                            );
                        }
                    };
                    if w + 1 == nworkers {
                        run();
                    } else {
                        scope.spawn(run);
                    }
                    item0 += items_here;
                }
            });
        }

        let mut dq_t = Tensor::zeros(batch * seq, self.dim);
        let mut dk_t = Tensor::zeros(batch * seq, self.dim);
        let mut dv_t = Tensor::zeros(batch * seq, self.dim);
        unpack_heads(dq_buf, batch, seq, heads, hd, dq_t.data_mut());
        unpack_heads(dk_buf, batch, seq, heads, hd, dk_t.data_mut());
        unpack_heads(dv_buf, batch, seq, heads, hd, dv_t.data_mut());
        self.spare = Some(cache);

        let mut dx = self.wq.backward(&dq_t);
        dx.add_assign(&self.wk.backward(&dk_t));
        dx.add_assign(&self.wv.backward(&dv_t));
        dx
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.wq.params_mut();
        ps.extend(self.wk.params_mut());
        ps.extend(self.wv.params_mut());
        ps.extend(self.wo.params_mut());
        ps
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.wq.param_count()
            + self.wk.param_count()
            + self.wv.param_count()
            + self.wo.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn masked_softmax_ignores_padding() {
        let mut row = vec![1.0, 2.0, 3.0];
        masked_softmax_row(&mut row, &[true, false, true]);
        assert_eq!(row[1], 0.0);
        assert!((row[0] + row[2] - 1.0).abs() < 1e-6);
        assert!(row[2] > row[0]);
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let mut row = vec![1.0, 2.0];
        masked_softmax_row(&mut row, &[false, false]);
        assert_eq!(row, vec![0.0, 0.0]);
    }

    #[test]
    fn fast_softmax_matches_exact_within_tolerance() {
        // Varied seq lengths exercise the full-vector and masked-tail
        // lanes; one masked position carries a value above the valid max
        // to hit the fast path's upper clamp.
        for seq in [3usize, 16, 17, 48, 63] {
            let mut exact: Vec<f32> = (0..seq * seq)
                .map(|i| ((i * 31 % 17) as f32) - 8.0)
                .collect();
            exact[seq / 2] = 40.0;
            let mut mask = vec![true; seq];
            mask[seq / 2] = false;
            let mut fast = exact.clone();
            for t in 0..seq {
                masked_softmax_row_scaled(&mut exact[t * seq..(t + 1) * seq], &mask, 0.25);
            }
            fast_softmax::item(&mut fast, seq, &mask, 0.25);
            for t in 0..seq {
                assert_eq!(fast[t * seq + seq / 2], 0.0, "masked lane must be zeroed");
                let row = &fast[t * seq..(t + 1) * seq];
                assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            }
            for (a, b) in exact.iter().zip(&fast) {
                assert!((a - b).abs() < 1e-5, "seq {seq}: {a} vs {b}");
            }
        }
        // Fully masked rows zero out on both paths, and the scalar form
        // agrees with the vector form's masking semantics.
        let mut block = vec![2.0f32, -1.0, 0.5, 3.0];
        fast_softmax::item(&mut block, 2, &[false, false], 1.0);
        assert_eq!(block, vec![0.0; 4]);
        let mut row = vec![2.0f32, -1.0];
        masked_softmax_row_fast_scalar(&mut row, &[false, false], 1.0);
        assert_eq!(row, vec![0.0, 0.0]);
    }

    #[test]
    fn fast_softmax_bits_are_bucket_invariant() {
        // The same 5 valid keys padded to different bucket widths must
        // produce bitwise-identical probabilities on the valid prefix —
        // the invariant that lets bucketed serving collation change batch
        // shape without changing any pair's score.
        let valid = 5usize;
        let vals: Vec<f32> = (0..valid).map(|i| (i as f32) * 0.7 - 1.2).collect();
        let mut reference: Option<Vec<f32>> = None;
        for seq in [valid, 7, 16, 21, 48] {
            let mut mask = vec![false; seq];
            let mut block = vec![0.0f32; seq * seq];
            for t in 0..valid {
                mask[t] = true;
                block[t * seq..t * seq + valid].copy_from_slice(&vals);
            }
            fast_softmax::item(&mut block, seq, &mask, 0.5);
            let got: Vec<f32> = (0..valid)
                .flat_map(|t| block[t * seq..t * seq + valid].to_vec())
                .collect();
            match &reference {
                None => reference = Some(got),
                Some(r) => assert_eq!(
                    r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "seq {seq} changed the valid prefix bits"
                ),
            }
        }
    }

    #[test]
    fn set_precision_routes_inference_softmax_only() {
        // Int8 mode must change inference bits (fast exp engaged) while the
        // training forward stays bitwise on the exact path.
        let mut rng = StdRng::seed_from_u64(11);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(6, 8, (0..48).map(|i| ((i % 13) as f32) * 0.11 - 0.6).collect());
        let mask = vec![true, true, true, true, true, false];
        let train_before = mha.forward(&x, 3, &mask);
        mha.cache = None;
        mha.set_precision(crate::qgemm::InferencePrecision::Int8);
        assert!(mha.fast);
        let train_after = mha.forward(&x, 3, &mask);
        mha.cache = None;
        assert_eq!(
            train_before.data(),
            train_after.data(),
            "training forward must ignore the inference precision knob"
        );
        mha.set_precision(crate::qgemm::InferencePrecision::Full);
        assert!(!mha.fast, "Full precision must restore the exact softmax");
    }

    #[test]
    fn pack_unpack_roundtrips() {
        let (batch, seq, heads, hd) = (2, 3, 2, 2);
        let x: Vec<f32> = (0..batch * seq * heads * hd).map(|i| i as f32).collect();
        let mut packed = vec![0.0f32; x.len()];
        pack_heads(&x, batch, seq, heads, hd, &mut packed);
        // Spot-check the layout: block (b=1, h=1), row t=2, col c=1 is
        // x[(1*3+2)*4 + 1*2 + 1].
        assert_eq!(packed[(((1 * 2 + 1) * 3) + 2) * 2 + 1], x[(5 * 4) + 3]);
        let mut back = vec![0.0f32; x.len()];
        unpack_heads(&packed, batch, seq, heads, hd, &mut back);
        assert_eq!(back, x);
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(6, 8, (0..48).map(|i| (i as f32) * 0.01).collect());
        let mask = vec![true; 6];
        let y = mha.forward(&x, 3, &mask); // batch of 2 sequences of length 3
        assert_eq!((y.rows(), y.cols()), (6, 8));
    }

    #[test]
    fn attention_rows_sum_to_one_over_valid_keys() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut mha = MultiHeadAttention::new(4, 1, &mut rng);
        let x = Tensor::from_vec(4, 4, (0..16).map(|i| (i as f32) * 0.1).collect());
        let mask = vec![true, true, true, false];
        let _ = mha.forward(&x, 4, &mask);
        let cache = mha.cache.as_ref().unwrap();
        // One head, one sequence: the first probs block is the 4×4 matrix.
        for t in 0..4 {
            let row = &cache.probs[t * 4..(t + 1) * 4];
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert_eq!(row[3], 0.0, "padded key must get zero attention");
        }
    }

    #[test]
    fn padding_tokens_do_not_change_valid_outputs() {
        // Same content with and without a padded tail: valid rows identical.
        let mut rng = StdRng::seed_from_u64(2);
        let mha = MultiHeadAttention::new(4, 2, &mut rng);
        let data: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let x2 = Tensor::from_vec(2, 4, data.clone());
        let y2 = mha.forward_inference(&x2, 2, &[true, true]);
        let mut padded = data.clone();
        padded.extend_from_slice(&[9.0, 9.0, 9.0, 9.0]); // garbage pad row
        let x3 = Tensor::from_vec(3, 4, padded);
        let y3 = mha.forward_inference(&x3, 3, &[true, true, false]);
        for t in 0..2 {
            for j in 0..4 {
                assert!(
                    (y2.get(t, j) - y3.get(t, j)).abs() < 1e-5,
                    "row {t} col {j}: {} vs {}",
                    y2.get(t, j),
                    y3.get(t, j)
                );
            }
        }
    }

    #[test]
    fn backward_produces_finite_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(4, 8, (0..32).map(|i| ((i % 7) as f32) * 0.1).collect());
        let mask = vec![true, true, true, false];
        let y = mha.forward(&x, 4, &mask);
        let dy = Tensor::from_vec(y.rows(), y.cols(), vec![1.0; y.len()]);
        let dx = mha.backward(&dy);
        assert_eq!((dx.rows(), dx.cols()), (4, 8));
        assert!(dx.data().iter().all(|v| v.is_finite()));
        assert!(mha.wq.weight.grad.frobenius_norm() > 0.0);
        assert!(mha.wo.weight.grad.frobenius_norm() > 0.0);
    }

    #[test]
    fn arena_reuse_is_transparent_across_steps() {
        // Two identical train steps must produce identical outputs and
        // gradients even though the second recycles the first's buffers.
        let mut rng = StdRng::seed_from_u64(6);
        let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
        let x = Tensor::from_vec(6, 8, (0..48).map(|i| ((i % 9) as f32) * 0.07).collect());
        let mask = vec![true, true, false, true, true, true];
        let dy = Tensor::from_vec(6, 8, (0..48).map(|i| ((i % 5) as f32) * 0.1 - 0.2).collect());

        let y1 = mha.forward(&x, 3, &mask);
        let dx1 = mha.backward(&dy);
        let g1 = mha.wq.weight.grad.clone();
        // Second step on the recycled arena.
        let y2 = mha.forward(&x, 3, &mask);
        let dx2 = mha.backward(&dy);
        assert_eq!(y1.data(), y2.data(), "forward diverged on recycled arena");
        assert_eq!(dx1.data(), dx2.data(), "backward diverged on recycled arena");
        // Gradients accumulate, so step 2's wq grad is exactly double.
        let g2 = mha.wq.weight.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((2.0 * a - b).abs() <= 1e-5 * a.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn smaller_batch_after_larger_shrinks_logical_shape() {
        // Arena buffers only grow; a smaller follow-up batch must still
        // compute on the correctly sized logical prefix.
        let mut rng = StdRng::seed_from_u64(7);
        let mut mha = MultiHeadAttention::new(4, 2, &mut rng);
        let big = Tensor::from_vec(8, 4, (0..32).map(|i| (i as f32) * 0.03).collect());
        let _ = mha.forward(&big, 4, &[true; 8]);
        let _ = mha.backward(&Tensor::from_vec(8, 4, vec![0.1; 32]));
        let small = Tensor::from_vec(2, 4, (0..8).map(|i| (i as f32) * 0.05).collect());
        let fresh = {
            let mut m2 = mha.clone();
            m2.spare = None;
            m2.forward(&small, 2, &[true, true])
        };
        let reused = mha.forward(&small, 2, &[true, true]);
        assert_eq!(fresh.data(), reused.data());
    }

    #[test]
    fn param_count_is_four_projections() {
        let mut rng = StdRng::seed_from_u64(4);
        let mha = MultiHeadAttention::new(16, 4, &mut rng);
        assert_eq!(mha.param_count(), 4 * (16 * 16 + 16));
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_heads_panic() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = MultiHeadAttention::new(6, 4, &mut rng);
    }
}
