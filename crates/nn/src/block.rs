//! Pre-norm transformer encoder block:
//! `x + MHA(LN(x))` followed by `x + FFN(LN(x))` with a GELU feed-forward.

use crate::attention::MultiHeadAttention;
use crate::layers::{Dropout, Gelu, LayerNorm, Linear};
use crate::param::Param;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// One pre-norm transformer encoder block.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// LayerNorm before attention.
    pub ln1: LayerNorm,
    /// Multi-head self-attention.
    pub attn: MultiHeadAttention,
    /// LayerNorm before the feed-forward network.
    pub ln2: LayerNorm,
    /// FFN expansion layer.
    pub ff1: Linear,
    /// FFN activation.
    pub act: Gelu,
    /// FFN contraction layer.
    pub ff2: Linear,
    /// Dropout on both residual branches.
    pub dropout: Dropout,
}

impl TransformerBlock {
    /// New block with model dim `dim`, `heads` attention heads and an FFN
    /// hidden size of `ff_mult · dim`.
    pub fn new(dim: usize, heads: usize, ff_mult: usize, dropout: f32, rng: &mut StdRng) -> Self {
        TransformerBlock {
            ln1: LayerNorm::new(dim),
            attn: MultiHeadAttention::new(dim, heads, rng),
            ln2: LayerNorm::new(dim),
            ff1: Linear::new(dim, ff_mult * dim, rng),
            act: Gelu::new(),
            ff2: Linear::new(ff_mult * dim, dim, rng),
            dropout: Dropout::new(dropout),
        }
    }

    /// Switches every layer in the block to the given inference numeric
    /// mode: the Linears (attention projections + FFN) flip between f32
    /// and int8 GEMMs, and the attention softmax / GELU / LayerNorms flip
    /// between exact and vectorized elementwise kernels.
    pub fn set_precision(&mut self, precision: crate::qgemm::InferencePrecision) {
        self.ln1.set_precision(precision);
        self.attn.set_precision(precision);
        self.ln2.set_precision(precision);
        self.ff1.set_precision(precision);
        self.act.set_precision(precision);
        self.ff2.set_precision(precision);
    }

    /// Training forward with caching. `rng` drives dropout masks.
    pub fn forward(&mut self, x: &Tensor, seq: usize, mask: &[bool], rng: &mut StdRng) -> Tensor {
        // Attention branch.
        let h = self.ln1.forward(x);
        let a = self.attn.forward(&h, seq, mask);
        let a = self.dropout.forward_train(&a, rng);
        let mut x1 = x.clone();
        x1.add_assign(&a);
        // FFN branch.
        let h2 = self.ln2.forward(&x1);
        let f = self.ff1.forward(&h2);
        let f = self.act.forward(&f);
        let f = self.ff2.forward(&f);
        let mut out = x1;
        out.add_assign(&f);
        out
    }

    /// Inference-only forward (no caching, no dropout).
    pub fn forward_inference(&self, x: &Tensor, seq: usize, mask: &[bool]) -> Tensor {
        let h = self.ln1.forward_inference(x);
        let a = self.attn.forward_inference(&h, seq, mask);
        let mut x1 = x.clone();
        x1.add_assign(&a);
        let h2 = self.ln2.forward_inference(&x1);
        let mut f = self.ff1.forward_inference(&h2);
        self.act.forward_inference_inplace(&mut f);
        let f = self.ff2.forward_inference(&f);
        let mut out = x1;
        out.add_assign(&f);
        out
    }

    /// Backward pass; returns dX.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        // FFN branch: out = x1 + ff2(act(ff1(ln2(x1)))).
        let df = self.ff2.backward(grad_out);
        let df = self.act.backward(&df);
        let df = self.ff1.backward(&df);
        let dln2 = self.ln2.backward(&df);
        let mut dx1 = grad_out.clone();
        dx1.add_assign(&dln2);
        // Attention branch: x1 = x + dropout(attn(ln1(x))).
        let da = self.dropout.backward(&dx1);
        let da = self.attn.backward(&da);
        let dln1 = self.ln1.backward(&da);
        let mut dx = dx1;
        dx.add_assign(&dln1);
        dx
    }

    /// Visits all parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut ps = self.ln1.params_mut();
        ps.extend(self.attn.params_mut());
        ps.extend(self.ln2.params_mut());
        ps.extend(self.ff1.params_mut());
        ps.extend(self.ff2.params_mut());
        ps
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.ln1.param_count()
            + self.attn.param_count()
            + self.ln2.param_count()
            + self.ff1.param_count()
            + self.ff2.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = TransformerBlock::new(8, 2, 4, 0.0, &mut rng);
        let x = Tensor::from_vec(4, 8, (0..32).map(|i| (i as f32) * 0.05).collect());
        let mask = vec![true; 4];
        let y = block.forward(&x, 2, &mask, &mut rng);
        assert_eq!((y.rows(), y.cols()), (4, 8));
        let yi = block.forward_inference(&x, 2, &mask);
        // With dropout 0, train and inference forward agree.
        for (a, b) in y.data().iter().zip(yi.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_runs_and_fills_grads() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut block = TransformerBlock::new(8, 2, 2, 0.0, &mut rng);
        let x = Tensor::from_vec(4, 8, (0..32).map(|i| ((i % 5) as f32) * 0.1).collect());
        let mask = vec![true; 4];
        let y = block.forward(&x, 4, &mask, &mut rng);
        let dy = Tensor::from_vec(y.rows(), y.cols(), vec![0.5; y.len()]);
        let dx = block.backward(&dy);
        assert_eq!((dx.rows(), dx.cols()), (4, 8));
        assert!(dx.data().iter().all(|v| v.is_finite()));
        for p in block.params_mut() {
            assert!(p.grad.data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn residual_path_passes_gradient_through() {
        // Gradient of the output w.r.t. input includes the identity path, so
        // dX cannot vanish even if weights were zero.
        let mut rng = StdRng::seed_from_u64(2);
        let mut block = TransformerBlock::new(4, 1, 2, 0.0, &mut rng);
        let x = Tensor::from_vec(2, 4, vec![0.1; 8]);
        let _ = block.forward(&x, 2, &[true, true], &mut rng);
        let dy = Tensor::from_vec(2, 4, vec![1.0; 8]);
        let dx = block.backward(&dy);
        assert!(dx.frobenius_norm() > 0.5);
    }

    #[test]
    fn param_count_formula() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = TransformerBlock::new(8, 2, 4, 0.0, &mut rng);
        let expect = 2 * 8 + 2 * 8                   // two layer norms
            + 4 * (8 * 8 + 8)                         // attention projections
            + (8 * 32 + 32) + (32 * 8 + 8); // FFN
        assert_eq!(block.param_count(), expect);
    }
}
