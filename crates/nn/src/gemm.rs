//! Cache-blocked, register-tiled, optionally parallel `f32` GEMM.
//!
//! One kernel serves all four operand layouts (`A·B`, `Aᵀ·B`, `A·Bᵀ`,
//! `Aᵀ·Bᵀ`): the layout only affects how operands are *packed*, never how
//! products are accumulated.
//!
//! # Design
//!
//! * **Packing.** `B` is repacked once per call into `NR`-wide column
//!   panels (`bpack[panel][p * NR + j]`), and each band of `A` rows into
//!   `MR`-wide row strips (`apack[strip][p * MR + i]`), both zero-padded
//!   at the edges. The microkernel then streams both operands with unit
//!   stride regardless of the original layout.
//! * **Register tiling.** The microkernel keeps an `MR×NR = 8×32` f32
//!   accumulator tile in registers (16 AVX-512 vectors, issued as fused
//!   multiply-adds) and performs the full `p = 0..k` reduction over it in
//!   one pass, so each output element is read and written exactly once.
//! * **Cache blocking.** Within a band the panel loop is outermost: one
//!   `k×NR` B panel (L1/L2-resident) is reused against every `MR×k` A
//!   strip of the band before moving on, so B traffic drops by a factor
//!   of `MR` versus the naive ikj loop and A strips stream sequentially.
//! * **Parallelism.** Row strips are divided into contiguous bands, one
//!   per worker, with worker count drawn from the shared
//!   [`crate::threadpool`] budget (so a GEMM nested inside an already
//!   parallel region degrades to sequential instead of oversubscribing).
//!
//! # Determinism
//!
//! Results are **bitwise identical** to the naive loops in
//! [`crate::reference`], at every thread count:
//!
//! * each output element accumulates its `k` products serially in
//!   `p = 0..k` order, starting from `+0.0` — the same sequence the
//!   reference kernels perform — and Rust never reassociates float adds
//!   nor contracts `mul + add` into FMA;
//! * the parallel driver partitions **output rows only**; `k` is never
//!   split, so no partial sums are ever combined;
//! * zero padding only ever feeds accumulators of padded (discarded)
//!   tile slots, never a real output element.

use crate::threadpool;

/// Metric handles resolved once; GEMM runs millions of times per study, so
/// the registry lock must never sit on this path.
struct GemmMetrics {
    calls: std::sync::Arc<em_obs::metrics::Counter>,
    flops: std::sync::Arc<em_obs::metrics::Counter>,
}

fn gemm_metrics() -> &'static GemmMetrics {
    static METRICS: std::sync::OnceLock<GemmMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| GemmMetrics {
        calls: em_obs::metrics::counter("gemm.calls"),
        flops: em_obs::metrics::counter("gemm.flops"),
    })
}

/// Microkernel tile height (rows of `A` per strip).
pub const MR: usize = 8;
/// Microkernel tile width (columns of `B` per panel).
pub const NR: usize = 32;

/// Below this `m·n·k` volume the naive reference loops win (packing
/// overhead dominates); the result is bitwise identical either way.
const BLOCKED_MIN_VOLUME: usize = 32 * 32 * 32;

/// Minimum `m·n·k` volume before worker threads are requested.
const PARALLEL_MIN_VOLUME: usize = 1 << 21;

/// `C = op(A)·op(B)` with `op` selected per operand.
///
/// * `a` holds `m×k` row-major when `a_trans` is false, `k×m` when true.
/// * `b` holds `k×n` row-major when `b_trans` is false, `n×k` when true.
/// * `c` must be `m×n`; it is overwritten with the product (existing
///   content is ignored, never accumulated into).
///
/// Dispatches between the blocked kernel and the naive reference by
/// problem volume; both produce bitwise-identical results.
pub fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k, "A shape mismatch");
    debug_assert_eq!(b.len(), k * n, "B shape mismatch");
    debug_assert_eq!(c.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let volume = m.saturating_mul(n).saturating_mul(k);
    if em_obs::capture_enabled() {
        let metrics = gemm_metrics();
        metrics.calls.inc();
        // One multiply + one add per (i, j, p) triple.
        metrics.flops.add(2 * volume as u64);
    }
    if volume < BLOCKED_MIN_VOLUME {
        // The reference kernels accumulate into `c` (the seed semantics);
        // zero it first so every path through `gemm` overwrites.
        c.iter_mut().for_each(|v| *v = 0.0);
        match (a_trans, b_trans) {
            (false, false) => crate::reference::matmul(m, k, n, a, b, c),
            (true, false) => crate::reference::t_matmul(k, m, n, a, b, c),
            (false, true) => crate::reference::matmul_t(m, k, n, a, b, c),
            // No naive reference for the doubly-transposed layout; the
            // blocked kernel handles it via packing.
            (true, true) => gemm_blocked(m, k, n, a, a_trans, b, b_trans, c),
        }
    } else {
        gemm_blocked(m, k, n, a, a_trans, b, b_trans, c);
    }
}

/// `C = A·op(B)` with FMA contraction, for small inference-only products.
///
/// Same shape contract as [`gemm`] with `a_trans = false`, but each
/// per-element accumulation uses fused multiply-add (one rounding per
/// step instead of two), so results differ from [`gemm`] by ordinary f32
/// rounding. Reserved for the reduced-precision serving path (attention
/// core in Int8 mode), where the drift budget already covers it — exact
/// paths must keep calling [`gemm`], whose mul-then-add order is the
/// bitwise contract the equivalence oracles pin. Accumulation is still
/// serial over `k` per element and depends only on the operand values,
/// so batch composition never changes a sequence's bits.
///
/// Falls back to [`gemm`] when `n > MAX_FAST_N` (accumulators no longer
/// fit the register budget) or the build lacks AVX-512.
pub fn gemm_fast(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k, "A shape mismatch");
    debug_assert_eq!(b.len(), k * n, "B shape mismatch");
    debug_assert_eq!(c.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if em_obs::capture_enabled() {
        let metrics = gemm_metrics();
        metrics.calls.inc();
        metrics.flops.add(2 * (m * n * k) as u64);
    }
    fast_kernels::gemm_fast(m, k, n, a, b, b_trans, c);
}

/// Strided form of [`gemm_fast`]: operand rows live at a caller-supplied
/// stride, so attention can read Q/K/V head blocks (and write the context
/// into the concatenated layout) straight out of the interleaved
/// `(batch·seq, dim)` tensors — no head packing or unpacking passes.
///
/// * `a` row `i` starts at `i·a_stride` (`k` values).
/// * `b` row `p` starts at `p·b_stride` (`n` values) when `!b_trans`;
///   when `b_trans`, element `(p, j)` is `b[j·b_stride + p]` (`n` rows of
///   `k` values).
/// * `c` row `i` starts at `i·c_stride` (`n` values).
///
/// Per-element accumulation order is identical to [`gemm_fast`] on packed
/// copies of the same operands, so the two produce bitwise-identical
/// results — the layout is an addressing change, not a numeric one.
#[allow(clippy::too_many_arguments)]
pub fn gemm_fast_strided(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_stride: usize,
    b: &[f32],
    b_stride: usize,
    b_trans: bool,
    c: &mut [f32],
    c_stride: usize,
) {
    debug_assert!(a_stride >= k && b_stride >= if b_trans { k } else { n } && c_stride >= n);
    debug_assert!(a.len() >= (m - 1) * a_stride + k, "A shape mismatch");
    debug_assert!(c.len() >= (m - 1) * c_stride + n, "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if em_obs::capture_enabled() {
        let metrics = gemm_metrics();
        metrics.calls.inc();
        metrics.flops.add(2 * (m * n * k) as u64);
    }
    fast_kernels::gemm_fast_strided(m, k, n, a, a_stride, b, b_stride, b_trans, c, c_stride);
}

/// Widest `n` the broadcast-FMA kernel holds in registers (4 zmm
/// accumulators). Attention-core shapes are `n = seq ≤ 64` or `n = hd`.
pub const MAX_FAST_N: usize = 64;

/// Broadcast-FMA direct kernels (no packing): row `i` of `C` accumulates
/// `a[i,k] · B[k, :]` over `k` with the whole output row held in
/// registers. `b_trans` operands are transposed into a small stack
/// buffer first — the attention `Q·Kᵀ` product is the only caller.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod fast_kernels {
    use std::arch::x86_64::*;

    /// Stack scratch for the transposed-B copy: covers `k·n` up to
    /// 64 × [`super::MAX_FAST_N`] (attention: `seq × seq` ≤ 64 × 64).
    const MAX_BT: usize = 64 * super::MAX_FAST_N;

    pub fn gemm_fast(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], b_trans: bool, c: &mut [f32]) {
        if n > super::MAX_FAST_N || (b_trans && k * n > MAX_BT) {
            super::gemm(m, k, n, a, false, b, b_trans, c);
            return;
        }
        gemm_fast_strided(m, k, n, a, k, b, if b_trans { k } else { n }, b_trans, c, n);
    }

    #[allow(clippy::too_many_arguments)]
    pub fn gemm_fast_strided(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        b_trans: bool,
        c: &mut [f32],
        c_stride: usize,
    ) {
        if n > super::MAX_FAST_N || (b_trans && k * n > MAX_BT) {
            portable_strided(m, k, n, a, a_stride, b, b_stride, b_trans, c, c_stride);
            return;
        }
        if b_trans {
            // b holds n rows of k values at b_stride; the kernel wants k×n.
            let mut bt = [0.0f32; MAX_BT];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * b_stride + p];
                }
            }
            unsafe { broadcast_fma(m, k, n, a, a_stride, &bt[..k * n], n, c, c_stride) }
        } else {
            unsafe { broadcast_fma(m, k, n, a, a_stride, b, b_stride, c, c_stride) }
        }
    }

    /// Scalar escape hatch for shapes past the register budget; mirrors
    /// the FMA contraction so results stay consistent per build.
    #[allow(clippy::too_many_arguments)]
    fn portable_strided(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        b_trans: bool,
        c: &mut [f32],
        c_stride: usize,
    ) {
        for i in 0..m {
            let arow = &a[i * a_stride..i * a_stride + k];
            for j in 0..n {
                let mut s = 0.0f32;
                for (p, &av) in arow.iter().enumerate() {
                    let bv = if b_trans { b[j * b_stride + p] } else { b[p * b_stride + j] };
                    s = av.mul_add(bv, s);
                }
                c[i * c_stride + j] = s;
            }
        }
    }

    /// `C[i, :] = Σ_k a[i,k] · B[k, :]` with up to 4 zmm accumulators per
    /// row; `n ≤ 64`. Rows of every operand live at caller strides.
    #[allow(clippy::too_many_arguments)]
    unsafe fn broadcast_fma(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        c: &mut [f32],
        c_stride: usize,
    ) {
        let groups = n.div_ceil(16);
        let tail = if n % 16 == 0 { 0xffffu16 } else { (1u16 << (n % 16)) - 1 };
        let gmask = |g: usize| if g + 1 == groups { tail } else { 0xffff };
        for i in 0..m {
            let arow = &a[i * a_stride..i * a_stride + k];
            let mut acc = [_mm512_setzero_ps(); 4];
            for (p, &av) in arow.iter().enumerate() {
                let bv = _mm512_set1_ps(av);
                let brow = b.as_ptr().add(p * b_stride);
                for g in 0..groups {
                    let x = _mm512_maskz_loadu_ps(gmask(g), brow.add(g * 16));
                    acc[g] = _mm512_fmadd_ps(bv, x, acc[g]);
                }
            }
            let crow = c.as_mut_ptr().add(i * c_stride);
            for g in 0..groups {
                _mm512_mask_storeu_ps(crow.add(g * 16), gmask(g), acc[g]);
            }
        }
    }
}

/// Portable fallback: no FMA to exploit, so the fast entry is just the
/// exact kernel — no speedup, no additional drift. The strided entry
/// stages operands into contiguous buffers and delegates likewise.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod fast_kernels {
    pub fn gemm_fast(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], b_trans: bool, c: &mut [f32]) {
        super::gemm(m, k, n, a, false, b, b_trans, c);
    }

    #[allow(clippy::too_many_arguments)]
    pub fn gemm_fast_strided(
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        a_stride: usize,
        b: &[f32],
        b_stride: usize,
        b_trans: bool,
        c: &mut [f32],
        c_stride: usize,
    ) {
        let ac: Vec<f32> = (0..m).flat_map(|i| a[i * a_stride..i * a_stride + k].iter().copied()).collect();
        let brows = if b_trans { n } else { k };
        let bcols = if b_trans { k } else { n };
        let bc: Vec<f32> =
            (0..brows).flat_map(|r| b[r * b_stride..r * b_stride + bcols].iter().copied()).collect();
        let mut cc = vec![0.0f32; m * n];
        super::gemm(m, k, n, &ac, false, &bc, b_trans, &mut cc);
        for i in 0..m {
            c[i * c_stride..i * c_stride + n].copy_from_slice(&cc[i * n..(i + 1) * n]);
        }
    }
}

/// The blocked kernel, unconditionally (no size dispatch). Public so the
/// equivalence tests and benchmarks can exercise it on any shape.
pub fn gemm_blocked(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
    c: &mut [f32],
) {
    debug_assert_eq!(a.len(), m * k, "A shape mismatch");
    debug_assert_eq!(b.len(), k * n, "B shape mismatch");
    debug_assert_eq!(c.len(), m * n, "C shape mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // The p-loop is empty: C is all zeros, matching the reference.
        c.iter_mut().for_each(|v| *v = 0.0);
        return;
    }

    let npanels = n.div_ceil(NR);
    let nstrips = m.div_ceil(MR);
    let mut bpack = vec![0.0f32; npanels * k * NR];
    pack_b(k, n, b, b_trans, &mut bpack);

    let volume = m * n * k;
    // Only parallel-scale GEMMs get a span; per-tile calls are far too
    // frequent to trace individually (they are visible in `gemm.calls`).
    let _span = if volume >= PARALLEL_MIN_VOLUME {
        em_obs::span!("gemm.large", m = m, n = n, k = k)
    } else {
        em_obs::trace::SpanGuard::disabled()
    };
    let reservation = if volume >= PARALLEL_MIN_VOLUME && nstrips > 1 {
        threadpool::reserve_workers(nstrips - 1)
    } else {
        threadpool::reserve_workers(0)
    };
    let nworkers = reservation.total().min(nstrips);

    if nworkers <= 1 {
        process_band(0, nstrips, m, k, n, a, a_trans, &bpack, c);
        return;
    }

    // Split the strip range into `nworkers` contiguous bands. Each band
    // owns a disjoint slice of C rows; per-element results do not depend
    // on the partition, only on (strip, panel), so any band split yields
    // bitwise-identical output.
    let base = nstrips / nworkers;
    let rem = nstrips % nworkers;
    std::thread::scope(|scope| {
        let mut rest = c;
        let mut strip0 = 0usize;
        for t in 0..nworkers {
            let strips_here = base + usize::from(t < rem);
            let row0 = strip0 * MR;
            let rows_here = ((strip0 + strips_here) * MR).min(m) - row0;
            let (band, tail) = rest.split_at_mut(rows_here * n);
            rest = tail;
            let bpack_ref = &bpack;
            let mut run = move || {
                process_band(strip0, strips_here, m, k, n, a, a_trans, bpack_ref, band);
            };
            if t + 1 == nworkers {
                // The calling thread works the last band itself.
                run();
            } else {
                scope.spawn(run);
            }
            strip0 += strips_here;
        }
    });
}

/// Packs `B` (`k×n` row-major, or `n×k` when `b_trans`) into `NR`-wide
/// column panels: `out[u * k * NR + p * NR + j] = b(p, u*NR + j)`,
/// zero-padding columns past `n`.
fn pack_b(k: usize, n: usize, b: &[f32], b_trans: bool, out: &mut [f32]) {
    let npanels = n.div_ceil(NR);
    if !b_trans {
        // Row-outer: each B row is read once, its NR-chunks scattered to
        // the panels — contiguous loads and stores throughout.
        for (p, row) in b.chunks_exact(n).enumerate() {
            let mut j0 = 0usize;
            for u in 0..npanels {
                let nr_eff = NR.min(n - j0);
                let dst = &mut out[u * k * NR + p * NR..u * k * NR + (p + 1) * NR];
                dst[..nr_eff].copy_from_slice(&row[j0..j0 + nr_eff]);
                dst[nr_eff..].iter_mut().for_each(|v| *v = 0.0);
                j0 += NR;
            }
        }
    } else {
        // b is n×k: column j of logical B is the contiguous row j.
        for u in 0..npanels {
            let j0 = u * NR;
            let nr_eff = NR.min(n - j0);
            let panel = &mut out[u * k * NR..(u + 1) * k * NR];
            for (jj, src) in b[j0 * k..].chunks_exact(k).take(nr_eff).enumerate() {
                for (p, &v) in src.iter().enumerate() {
                    panel[p * NR + jj] = v;
                }
            }
            if nr_eff < NR {
                for p in 0..k {
                    panel[p * NR + nr_eff..(p + 1) * NR]
                        .iter_mut()
                        .for_each(|v| *v = 0.0);
                }
            }
        }
    }
}

/// Packs one `MR`-row strip of `A` (`m×k` row-major, or `k×m` when
/// `a_trans`) as `out[p * MR + i] = a(row0 + i, p)`, zero-padding rows
/// past `m`.
fn pack_a_strip(
    k: usize,
    m: usize,
    row0: usize,
    a: &[f32],
    a_trans: bool,
    out: &mut [f32],
) {
    let mr_eff = MR.min(m - row0);
    if !a_trans {
        if mr_eff == MR {
            // p-outer over MR parallel read streams: writes are
            // contiguous, reads advance one sequential cursor per row.
            let base = row0 * k;
            for (p, dst) in out.chunks_exact_mut(MR).enumerate() {
                for (ii, d) in dst.iter_mut().enumerate() {
                    *d = a[base + ii * k + p];
                }
            }
        } else {
            for (p, dst) in out.chunks_exact_mut(MR).enumerate() {
                for ii in 0..mr_eff {
                    dst[ii] = a[(row0 + ii) * k + p];
                }
                dst[mr_eff..].iter_mut().for_each(|v| *v = 0.0);
            }
        }
    } else {
        // a is k×m: row p of the buffer holds a(·, p).
        for (p, dst) in out.chunks_exact_mut(MR).enumerate() {
            let src = &a[p * m + row0..p * m + row0 + mr_eff];
            dst[..mr_eff].copy_from_slice(src);
            dst[mr_eff..].iter_mut().for_each(|v| *v = 0.0);
        }
    }
}

/// Computes one contiguous band of `nstrips_band` row strips starting at
/// global strip `strip0`, writing into `band` (the matching rows of C).
#[allow(clippy::too_many_arguments)]
fn process_band(
    strip0: usize,
    nstrips_band: usize,
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_trans: bool,
    bpack: &[f32],
    band: &mut [f32],
) {
    let band_rows = band.len() / n.max(1);
    let npanels = n.div_ceil(NR);
    // Pack the whole band of A up front so the panel loop can be
    // outermost: each k×NR B panel stays cache-hot while it is reused
    // against every strip of the band.
    let mut apack = vec![0.0f32; nstrips_band * MR * k];
    for si in 0..nstrips_band {
        pack_a_strip(
            k,
            m,
            (strip0 + si) * MR,
            a,
            a_trans,
            &mut apack[si * MR * k..(si + 1) * MR * k],
        );
    }

    for u in 0..npanels {
        let bpanel = &bpack[u * k * NR..(u + 1) * k * NR];
        let j0 = u * NR;
        let nr_eff = NR.min(n - j0);
        for si in 0..nstrips_band {
            let ap = &apack[si * MR * k..(si + 1) * MR * k];
            let row0 = si * MR; // row offset within the band
            let mr_eff = MR.min(band_rows - row0);
            if mr_eff == MR && nr_eff == NR {
                // Full tile: store straight into C, skipping the bounce
                // buffer. The tile [row0..row0+MR) × [j0..j0+NR) is fully
                // inside the band, so the raw-pointer stores are in
                // bounds.
                unsafe {
                    microkernel_full(ap, bpanel, band.as_mut_ptr().add(row0 * n + j0), n);
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                microkernel_edge(ap, bpanel, &mut acc);
                for (ii, accrow) in acc.iter().enumerate().take(mr_eff) {
                    let dst =
                        &mut band[(row0 + ii) * n + j0..(row0 + ii) * n + j0 + nr_eff];
                    dst.copy_from_slice(&accrow[..nr_eff]);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Microkernels.
//
// `acc[i][j] = fma(ap(p,i), bp(p,j), ·)` over the full `p = 0..k`
// reduction, serially in `p` order. `ap` is an `MR`-packed strip
// (`k·MR` values), `bp` an `NR`-packed panel (`k·NR` values).
//
// The accumulation step is a *fused* multiply-add (single rounding) in
// every implementation — `_mm512_fmadd_ps` and `f32::mul_add` round
// identically per IEEE 754, and `crate::reference` uses the same op in
// the same order, so all paths stay bitwise-equal.
//
// `microkernel_full` stores a complete MR×NR tile straight into C at row
// stride `ldc`; `microkernel_edge` computes into a bounce buffer so the
// caller can copy out only the valid region of a boundary tile.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod kernels {
    use super::{MR, NR};
    use std::arch::x86_64::*;

    /// The register-resident reduction: an 8×32 tile is 16 zmm
    /// accumulators + 2 B-panel vectors + 1 broadcast, within the 32
    /// architectural zmm registers.
    #[inline(always)]
    unsafe fn reduce(ap: &[f32], bp: &[f32]) -> [[__m512; 2]; MR] {
        let k = bp.len() / NR;
        debug_assert_eq!(ap.len(), k * MR);
        let mut c: [[__m512; 2]; MR] = [[_mm512_setzero_ps(); 2]; MR];
        let mut bptr = bp.as_ptr();
        let mut aptr = ap.as_ptr();
        for _ in 0..k {
            let b0 = _mm512_loadu_ps(bptr);
            let b1 = _mm512_loadu_ps(bptr.add(16));
            for (i, ci) in c.iter_mut().enumerate() {
                let ai = _mm512_set1_ps(*aptr.add(i));
                ci[0] = _mm512_fmadd_ps(ai, b0, ci[0]);
                ci[1] = _mm512_fmadd_ps(ai, b1, ci[1]);
            }
            bptr = bptr.add(NR);
            aptr = aptr.add(MR);
        }
        c
    }

    /// # Safety
    /// `out` must be valid for writes of `NR` floats at each of the `MR`
    /// row offsets `i * ldc`.
    #[inline]
    pub unsafe fn microkernel_full(ap: &[f32], bp: &[f32], out: *mut f32, ldc: usize) {
        let c = reduce(ap, bp);
        for (i, ci) in c.iter().enumerate() {
            _mm512_storeu_ps(out.add(i * ldc), ci[0]);
            _mm512_storeu_ps(out.add(i * ldc + 16), ci[1]);
        }
    }

    #[inline]
    pub fn microkernel_edge(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        unsafe {
            let c = reduce(ap, bp);
            for (accrow, ci) in acc.iter_mut().zip(&c) {
                _mm512_storeu_ps(accrow.as_mut_ptr(), ci[0]);
                _mm512_storeu_ps(accrow.as_mut_ptr().add(16), ci[1]);
            }
        }
    }
}

/// Portable fallback: same op sequence via [`f32::mul_add`], which LLVM
/// lowers to hardware FMA where available and a correctly-rounded libm
/// call elsewhere — bitwise-identical output either way.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod kernels {
    use super::{MR, NR};

    #[inline(always)]
    fn reduce(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        for (avals, bvals) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
            let bvals: &[f32; NR] = bvals.try_into().unwrap();
            for (&ai, accrow) in avals.iter().zip(acc.iter_mut()) {
                for (cv, &bv) in accrow.iter_mut().zip(bvals.iter()) {
                    *cv = ai.mul_add(bv, *cv);
                }
            }
        }
    }

    /// # Safety
    /// `out` must be valid for writes of `NR` floats at each of the `MR`
    /// row offsets `i * ldc`.
    #[inline]
    pub unsafe fn microkernel_full(ap: &[f32], bp: &[f32], out: *mut f32, ldc: usize) {
        let mut acc = [[0.0f32; NR]; MR];
        reduce(ap, bp, &mut acc);
        for (i, accrow) in acc.iter().enumerate() {
            unsafe {
                std::ptr::copy_nonoverlapping(accrow.as_ptr(), out.add(i * ldc), NR);
            }
        }
    }

    #[inline]
    pub fn microkernel_edge(ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
        reduce(ap, bp, acc);
    }
}

use kernels::{microkernel_edge, microkernel_full};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        // Cheap deterministic pseudo-noise with varied magnitudes.
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 4.0
            })
            .collect()
    }

    #[test]
    fn fast_strided_matches_contiguous_bits() {
        // The strided kernel on interleaved head blocks must reproduce the
        // contiguous kernel on packed copies bit-for-bit — that is what
        // lets the unpacked attention path inherit the packed path's
        // invariance proofs.
        let (seq, hd, heads) = (21, 16, 3);
        let dim = heads * hd;
        let q = fill(seq * dim, 1);
        let k = fill(seq * dim, 2);
        let p = fill(seq * seq, 3);
        for h in 0..heads {
            let off = h * hd;
            // Packed copies of head h.
            let qp: Vec<f32> = (0..seq).flat_map(|t| q[t * dim + off..t * dim + off + hd].to_vec()).collect();
            let kp: Vec<f32> = (0..seq).flat_map(|t| k[t * dim + off..t * dim + off + hd].to_vec()).collect();
            // Q·Kᵀ, strided A and B vs contiguous.
            let mut want = vec![0.0f32; seq * seq];
            gemm_fast(seq, hd, seq, &qp, &kp, true, &mut want);
            let mut got = vec![0.0f32; seq * seq];
            gemm_fast_strided(seq, hd, seq, &q[off..], dim, &k[off..], dim, true, &mut got, seq);
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "QKᵀ head {h} diverged"
            );
            // P·V with a strided C, vs contiguous then scatter.
            let mut ctx = vec![0.0f32; seq * hd];
            gemm_fast(seq, seq, hd, &p, &kp, false, &mut ctx);
            let mut out = vec![0.0f32; seq * dim];
            gemm_fast_strided(seq, seq, hd, &p, seq, &k[off..], dim, false, &mut out[off..], dim);
            for t in 0..seq {
                for c in 0..hd {
                    assert_eq!(
                        ctx[t * hd + c].to_bits(),
                        out[t * dim + off + c].to_bits(),
                        "P·V head {h} row {t} col {c} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_matches_hand_computed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        gemm_blocked(2, 2, 2, &a, false, &b, false, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_awkward_shapes() {
        // Shapes straddling the MR/NR tile edges in every direction.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (4, 16, 16),
            (5, 17, 33),
            (13, 1, 31),
            (17, 64, 15),
        ] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let mut fast = vec![0.0f32; m * n];
            let mut slow = vec![0.0f32; m * n];
            gemm_blocked(m, k, n, &a, false, &b, false, &mut fast);
            reference::matmul(m, k, n, &a, &b, &mut slow);
            assert!(
                fast.iter().zip(&slow).all(|(x, y)| x.to_bits() == y.to_bits()),
                "mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn transposed_layouts_match_their_references() {
        let (m, k, n) = (9, 21, 19);
        let at = fill(k * m, 3); // k×m, to be read transposed
        let b = fill(k * n, 4);
        let bt = fill(n * k, 5); // n×k, to be read transposed
        let a = fill(m * k, 6);

        let mut fast = vec![0.0f32; m * n];
        let mut slow = vec![0.0f32; m * n];
        gemm_blocked(m, k, n, &at, true, &b, false, &mut fast);
        reference::t_matmul(k, m, n, &at, &b, &mut slow);
        assert_eq!(fast, slow, "Aᵀ·B");

        fast.iter_mut().for_each(|v| *v = 0.0);
        slow.iter_mut().for_each(|v| *v = 0.0);
        gemm_blocked(m, k, n, &a, false, &bt, true, &mut fast);
        reference::matmul_t(m, k, n, &a, &bt, &mut slow);
        assert_eq!(fast, slow, "A·Bᵀ");
    }

    #[test]
    fn doubly_transposed_layout_is_the_transpose_of_the_product() {
        // (Aᵀ·Bᵀ)ᵀ = B·A: check against the plain kernel.
        let (m, k, n) = (6, 10, 8);
        let a = fill(k * m, 7); // k×m
        let b = fill(n * k, 8); // n×k
        let mut tt = vec![0.0f32; m * n];
        gemm_blocked(m, k, n, &a, true, &b, true, &mut tt);
        let mut ba = vec![0.0f32; n * m];
        reference::matmul(n, k, m, &b, &a, &mut ba);
        for i in 0..m {
            for j in 0..n {
                assert_eq!(tt[i * n + j].to_bits(), ba[j * m + i].to_bits());
            }
        }
    }

    #[test]
    fn degenerate_dims_yield_zero_sized_or_zero_filled_output() {
        let mut c = vec![0.0f32; 0];
        gemm_blocked(0, 4, 5, &fill(0, 9), false, &fill(20, 9), false, &mut c);
        gemm_blocked(3, 4, 0, &fill(12, 9), false, &fill(0, 9), false, &mut c);
        let mut c = vec![1.0f32; 6]; // pre-poisoned: k = 0 must zero it
        gemm_blocked(2, 0, 3, &[], false, &[], false, &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dispatching_entry_point_matches_blocked_across_the_size_threshold() {
        for &(m, k, n) in &[(4, 4, 4), (48, 48, 48)] {
            let a = fill(m * k, 10);
            let b = fill(k * n, 11);
            let mut via_dispatch = vec![0.0f32; m * n];
            let mut via_blocked = vec![0.0f32; m * n];
            gemm(m, k, n, &a, false, &b, false, &mut via_dispatch);
            gemm_blocked(m, k, n, &a, false, &b, false, &mut via_blocked);
            assert_eq!(via_dispatch, via_blocked);
        }
    }

    // Thread-count parity is covered in `tests/gemm_equivalence.rs`,
    // which owns the process-global thread-cap override; mutating it
    // here would race with the threadpool unit tests.
}
