//! Finite-difference gradient checking utilities.
//!
//! Backpropagation bugs are silent: training still "works", just worse.
//! Every layer in this crate is therefore verified against centered finite
//! differences. The helpers here are public so downstream crates (`em-lm`)
//! can gradient-check their composite models too.

/// Centered-difference numeric gradient of a scalar function of a flat
/// vector: `g_i ≈ (f(x + h·e_i) - f(x - h·e_i)) / 2h`.
pub fn numeric_gradient<F>(x: &[f32], mut f: F, h: f32) -> Vec<f32>
where
    F: FnMut(&[f32]) -> f32,
{
    let mut grad = Vec::with_capacity(x.len());
    let mut buf = x.to_vec();
    for i in 0..x.len() {
        let orig = buf[i];
        buf[i] = orig + h;
        let fp = f(&buf);
        buf[i] = orig - h;
        let fm = f(&buf);
        buf[i] = orig;
        grad.push((fp - fm) / (2.0 * h));
    }
    grad
}

/// Maximum relative error between analytic and numeric gradients, with an
/// absolute floor so near-zero entries don't blow up the ratio.
pub fn max_relative_error(analytic: &[f32], numeric: &[f32]) -> f32 {
    assert_eq!(analytic.len(), numeric.len());
    analytic
        .iter()
        .zip(numeric)
        .map(|(&a, &n)| {
            let denom = a.abs().max(n.abs()).max(1e-3);
            (a - n).abs() / denom
        })
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::MultiHeadAttention;
    use crate::block::TransformerBlock;
    use crate::layers::{LayerNorm, Linear};
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Loss: weighted sum of all outputs, so dLoss/dY is a constant tensor
    /// of pseudo-random weights (catches transposition bugs that a uniform
    /// dY would mask).
    fn loss_weights(rows: usize, cols: usize) -> Tensor {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 2654435761usize % 1000) as f32 / 1000.0) - 0.5)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn weighted_sum(y: &Tensor, w: &Tensor) -> f32 {
        y.data().iter().zip(w.data()).map(|(a, b)| a * b).sum()
    }

    #[test]
    fn linear_weight_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| (i as f32) * 0.13 - 0.7).collect());
        let w = loss_weights(4, 2);

        let y = lin.forward(&x);
        let _ = lin.backward(&w);
        let analytic = lin.weight.grad.data().to_vec();
        let _ = y;

        let base = lin.weight.value.data().to_vec();
        let numeric = numeric_gradient(
            &base,
            |vals| {
                let mut probe = lin.clone();
                probe.weight.value = Tensor::from_vec(3, 2, vals.to_vec());
                weighted_sum(&probe.forward_inference(&x), &w)
            },
            1e-2,
        );
        assert!(
            max_relative_error(&analytic, &numeric) < 2e-2,
            "err {}",
            max_relative_error(&analytic, &numeric)
        );
    }

    #[test]
    fn linear_input_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x0: Vec<f32> = (0..6).map(|i| (i as f32) * 0.21 - 0.5).collect();
        let w = loss_weights(2, 2);
        let x = Tensor::from_vec(2, 3, x0.clone());
        let _ = lin.forward(&x);
        let dx = lin.backward(&w);
        let numeric = numeric_gradient(
            &x0,
            |vals| {
                let xt = Tensor::from_vec(2, 3, vals.to_vec());
                weighted_sum(&lin.forward_inference(&xt), &w)
            },
            1e-2,
        );
        assert!(max_relative_error(dx.data(), &numeric) < 2e-2);
    }

    #[test]
    fn layernorm_input_gradient_checks() {
        let mut ln = LayerNorm::new(4);
        // Nonuniform gamma to exercise the full formula.
        ln.gamma.value = Tensor::from_vec(1, 4, vec![1.5, 0.5, -0.7, 2.0]);
        ln.beta.value = Tensor::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.0]);
        let x0: Vec<f32> = vec![0.3, -1.2, 0.8, 2.1, -0.4, 0.9, 1.1, -2.0];
        let w = loss_weights(2, 4);
        let x = Tensor::from_vec(2, 4, x0.clone());
        let _ = ln.forward(&x);
        let dx = ln.backward(&w);
        let numeric = numeric_gradient(
            &x0,
            |vals| {
                let xt = Tensor::from_vec(2, 4, vals.to_vec());
                weighted_sum(&ln.forward_inference(&xt), &w)
            },
            1e-2,
        );
        assert!(
            max_relative_error(dx.data(), &numeric) < 3e-2,
            "err {}",
            max_relative_error(dx.data(), &numeric)
        );
    }

    #[test]
    fn attention_input_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mha = MultiHeadAttention::new(4, 2, &mut rng);
        let x0: Vec<f32> = (0..12).map(|i| ((i * 7 % 11) as f32) * 0.1 - 0.5).collect();
        let mask = vec![true, true, false]; // includes a padded token
        let w = loss_weights(3, 4);
        let x = Tensor::from_vec(3, 4, x0.clone());
        let _ = mha.forward(&x, 3, &mask);
        let dx = mha.backward(&w);
        let numeric = numeric_gradient(
            &x0,
            |vals| {
                let xt = Tensor::from_vec(3, 4, vals.to_vec());
                weighted_sum(&mha.forward_inference(&xt, 3, &mask), &w)
            },
            1e-2,
        );
        assert!(
            max_relative_error(dx.data(), &numeric) < 5e-2,
            "err {}",
            max_relative_error(dx.data(), &numeric)
        );
    }

    #[test]
    fn attention_query_weight_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new(4, 1, &mut rng);
        let x = Tensor::from_vec(2, 4, vec![0.2, -0.4, 0.6, 0.1, -0.3, 0.5, 0.0, 0.7]);
        let mask = vec![true, true];
        let w = loss_weights(2, 4);
        let _ = mha.forward(&x, 2, &mask);
        let _ = mha.backward(&w);
        let analytic = mha.wq.weight.grad.data().to_vec();
        let base = mha.wq.weight.value.data().to_vec();
        let numeric = numeric_gradient(
            &base,
            |vals| {
                let mut probe = mha.clone();
                probe.wq.weight.value = Tensor::from_vec(4, 4, vals.to_vec());
                weighted_sum(&probe.forward_inference(&x, 2, &mask), &w)
            },
            1e-2,
        );
        assert!(
            max_relative_error(&analytic, &numeric) < 5e-2,
            "err {}",
            max_relative_error(&analytic, &numeric)
        );
    }

    #[test]
    fn full_block_input_gradient_checks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut block = TransformerBlock::new(4, 2, 2, 0.0, &mut rng);
        let x0: Vec<f32> = (0..8).map(|i| ((i * 3 % 7) as f32) * 0.15 - 0.4).collect();
        let mask = vec![true, true];
        let w = loss_weights(2, 4);
        let x = Tensor::from_vec(2, 4, x0.clone());
        let mut drng = StdRng::seed_from_u64(0);
        let _ = block.forward(&x, 2, &mask, &mut drng);
        let dx = block.backward(&w);
        let numeric = numeric_gradient(
            &x0,
            |vals| {
                let xt = Tensor::from_vec(2, 4, vals.to_vec());
                weighted_sum(&block.forward_inference(&xt, 2, &mask), &w)
            },
            1e-2,
        );
        assert!(
            max_relative_error(dx.data(), &numeric) < 6e-2,
            "err {}",
            max_relative_error(dx.data(), &numeric)
        );
    }

    #[test]
    fn numeric_gradient_of_quadratic_is_exact() {
        // f(x) = sum x², grad = 2x.
        let x = vec![1.0f32, -2.0, 0.5];
        let g = numeric_gradient(&x, |v| v.iter().map(|a| a * a).sum(), 1e-3);
        for (gi, xi) in g.iter().zip(&x) {
            assert!((gi - 2.0 * xi).abs() < 1e-2);
        }
    }
}
