//! Core layers with explicit forward/backward passes: Linear, Embedding,
//! LayerNorm, Dropout, and the GELU activation.
//!
//! Layers cache what their backward pass needs during forward; gradients
//! accumulate into [`Param::grad`], and each backward returns the gradient
//! with respect to its input.

use crate::param::Param;
use crate::qgemm::{InferencePrecision, QuantizedMatrix};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Fully connected layer `Y = X·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix of shape (in, out).
    pub weight: Param,
    /// Bias of shape (1, out).
    pub bias: Param,
    cached_input: Option<Tensor>,
    /// Int8-packed copy of `weight`, present only while the layer is in
    /// [`InferencePrecision::Int8`] mode. `Arc` keeps clones of a frozen
    /// model from re-quantizing. Never consulted by `forward`/`backward`,
    /// so training remains bitwise identical regardless of mode.
    qweight: Option<std::sync::Arc<QuantizedMatrix>>,
}

impl Linear {
    /// Xavier-initialized linear layer.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            weight: Param::xavier(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            cached_input: None,
            qweight: None,
        }
    }

    /// Switches the inference numeric mode. `Int8` quantizes the current
    /// weights (training afterwards would leave the packed copy stale —
    /// callers quantize frozen models only); `Full` drops the packed copy
    /// and restores the bitwise f32 path.
    pub fn set_precision(&mut self, precision: InferencePrecision) {
        self.qweight = match precision {
            InferencePrecision::Full => None,
            InferencePrecision::Int8 => {
                Some(std::sync::Arc::new(QuantizedMatrix::from_tensor(&self.weight.value)))
            }
        };
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Forward pass; caches the input for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.matmul(&self.weight.value);
        y.add_row_broadcast(self.bias.value.row(0));
        self.cached_input = Some(x.clone());
        y
    }

    /// Inference-only forward (no caching, `&self`). Uses the int8 path
    /// when the layer is in [`InferencePrecision::Int8`] mode, otherwise
    /// the bitwise-reproducible f32 GEMM.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        match &self.qweight {
            // Bias rides in the dequantize epilogue — bitwise identical
            // to a separate broadcast pass, one fewer output traversal.
            Some(q) => q.matmul_bias(x, self.bias.value.row(0)),
            None => {
                let mut y = x.matmul(&self.weight.value);
                y.add_row_broadcast(self.bias.value.row(0));
                y
            }
        }
    }

    /// [`Self::forward_inference`] with activation quantization shared
    /// across sibling layers of the same input (attention Q/K/V project
    /// the same rows three times): the first int8 call populates `qx`,
    /// later calls reuse it. Per-row activation scales depend only on
    /// `x`, so sharing is bitwise identical to quantizing per call. In
    /// `Full` mode `qx` is untouched.
    pub fn forward_inference_shared(
        &self,
        x: &Tensor,
        qx: &mut Option<crate::qgemm::QuantizedActivations>,
    ) -> Tensor {
        match &self.qweight {
            Some(q) => {
                let qa = qx.get_or_insert_with(|| {
                    crate::qgemm::QuantizedActivations::quantize(x, q.kp())
                });
                q.matmul_prequant_bias(qa, self.bias.value.row(0))
            }
            None => self.forward_inference(x),
        }
    }

    /// Backward pass: accumulates dW, db; returns dX.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        // dW += Xᵀ·dY
        let dw = x.t_matmul(grad_out);
        self.weight.grad.add_assign(&dw);
        // db += column sums of dY
        let db = grad_out.sum_rows();
        for (g, &d) in self.bias.grad.data_mut().iter_mut().zip(&db) {
            *g += d;
        }
        // dX = dY·Wᵀ
        grad_out.matmul_t(&self.weight.value)
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.weight.count() + self.bias.count()
    }
}

/// Token embedding lookup table of shape (vocab, dim).
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The embedding table.
    pub table: Param,
    cached_ids: Option<Vec<u32>>,
}

impl Embedding {
    /// Normal(0, 0.02)-initialized embedding table.
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        Embedding {
            table: Param::normal_embedding(vocab, dim, rng),
            cached_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Looks up a batch of token ids → (ids.len(), dim).
    ///
    /// # Panics
    /// Panics if any id is out of vocabulary.
    pub fn forward(&mut self, ids: &[u32]) -> Tensor {
        let out = self.lookup(ids);
        self.cached_ids = Some(ids.to_vec());
        out
    }

    /// Inference-only lookup (no caching).
    pub fn lookup(&self, ids: &[u32]) -> Tensor {
        let dim = self.dim();
        let mut out = Tensor::zeros(ids.len(), dim);
        for (i, &id) in ids.iter().enumerate() {
            assert!((id as usize) < self.vocab(), "token id {id} out of vocab");
            out.row_mut(i)
                .copy_from_slice(self.table.value.row(id as usize));
        }
        out
    }

    /// Minimum scatter size (ids × dim) that justifies fanning the
    /// embedding backward out over the worker budget.
    const PAR_MIN_ELEMS: usize = 1 << 15;

    /// Backward: scatter-adds row gradients into the table gradient.
    ///
    /// Large scatters partition the *destination table rows* across
    /// workers; every worker scans the full id list and accumulates only
    /// the rows it owns, so each table row receives its contributions in
    /// id order regardless of the thread count — bitwise identical to the
    /// serial scatter.
    pub fn backward(&mut self, grad_out: &Tensor) {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("backward called before forward");
        assert_eq!(grad_out.rows(), ids.len());
        let dim = self.table.value.cols();
        let vocab = self.table.value.rows();
        let nworkers = if ids.len() * dim >= Self::PAR_MIN_ELEMS {
            crate::threadpool::max_threads().min(vocab)
        } else {
            1
        };
        let reservation = crate::threadpool::reserve_workers(nworkers.saturating_sub(1));
        let nworkers = reservation.total().min(vocab);
        if nworkers <= 1 {
            for (i, &id) in ids.iter().enumerate() {
                let src = grad_out.row(i);
                let dst = self.table.grad.row_mut(id as usize);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += s;
                }
            }
            return;
        }
        let rows_per = vocab.div_ceil(nworkers);
        let scatter = |chunk: &mut [f32], lo: usize| {
            let hi = lo + chunk.len() / dim;
            for (i, &id) in ids.iter().enumerate() {
                let id = id as usize;
                if id >= lo && id < hi {
                    let dst = &mut chunk[(id - lo) * dim..(id - lo + 1) * dim];
                    for (d, &s) in dst.iter_mut().zip(grad_out.row(i)) {
                        *d += s;
                    }
                }
            }
        };
        std::thread::scope(|scope| {
            let mut chunks = self
                .table
                .grad
                .data_mut()
                .chunks_mut(rows_per * dim)
                .enumerate();
            let (_, head) = chunks.next().expect("vocab is nonempty");
            for (w, chunk) in chunks {
                let scatter = &scatter;
                scope.spawn(move || scatter(chunk, w * rows_per));
            }
            scatter(head, 0);
        });
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.table]
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.table.count()
    }
}

/// Per-row layer normalization with learned gain/offset.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Gain γ of shape (1, dim), initialized to 1.
    pub gamma: Param,
    /// Offset β of shape (1, dim), initialized to 0.
    pub beta: Param,
    eps: f32,
    cached: Option<(Tensor, Vec<f32>)>, // (x_hat, inv_std per row)
    /// In [`InferencePrecision::Int8`] mode the inference forward runs a
    /// vectorized normalization (tree-order mean/variance reductions —
    /// deterministic per row, but not bit-matched to the serial scalar
    /// sums). Training and `Full` inference always use the exact path.
    fast: bool,
}

impl LayerNorm {
    /// New layer norm over vectors of length `dim`.
    pub fn new(dim: usize) -> Self {
        let mut gamma = Param::zeros(1, dim);
        gamma.value.data_mut().iter_mut().for_each(|v| *v = 1.0);
        LayerNorm {
            gamma,
            beta: Param::zeros(1, dim),
            eps: 1e-5,
            cached: None,
            fast: false,
        }
    }

    /// Switches the inference numeric mode (see the `fast` field).
    pub fn set_precision(&mut self, precision: InferencePrecision) {
        self.fast = matches!(precision, InferencePrecision::Int8);
    }

    /// Forward pass with caching.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let (out, xhat, inv_std) = self.compute(x);
        self.cached = Some((xhat, inv_std));
        out
    }

    /// Inference-only forward. The fast (Int8-mode) path also skips the
    /// x̂ cache tensor the shared `compute` materializes for backward.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        if self.fast {
            return fast_layernorm::forward(
                x,
                self.gamma.value.row(0),
                self.beta.value.row(0),
                self.eps,
            );
        }
        self.compute(x).0
    }

    fn compute(&self, x: &Tensor) -> (Tensor, Tensor, Vec<f32>) {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Tensor::zeros(n, d);
        let mut xhat = Tensor::zeros(n, d);
        let mut inv_stds = Vec::with_capacity(n);
        let gamma = self.gamma.value.row(0);
        let beta = self.beta.value.row(0);
        for i in 0..n {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + self.eps).sqrt();
            inv_stds.push(inv_std);
            let xh = xhat.row_mut(i);
            let o = &mut out.data_mut()[i * d..(i + 1) * d];
            for j in 0..d {
                let h = (row[j] - mean) * inv_std;
                xh[j] = h;
                o[j] = gamma[j] * h + beta[j];
            }
        }
        (out, xhat, inv_stds)
    }

    /// Rows per LayerNorm-backward block: the unit of both the parallel
    /// fan-out and the fixed-order dγ/dβ reduction. Part of the numeric
    /// contract — partial sums are always accumulated per block and then
    /// reduced in block order, whether or not workers were granted, so
    /// results are bitwise identical at every thread count.
    const ROW_BLOCK: usize = 64;

    /// Backward pass: accumulates dγ, dβ; returns dX.
    ///
    /// Row blocks are independent (dX is per-row; dγ/dβ land in per-block
    /// partials) and fan out via [`crate::threadpool::fan_out`]; the
    /// partials reduce serially in block order afterwards.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (xhat, inv_stds) = self
            .cached
            .as_ref()
            .expect("backward called before forward");
        let (n, d) = (grad_out.rows(), grad_out.cols());
        let gamma = self.gamma.value.row(0);
        let mut dx = Tensor::zeros(n, d);
        let nblocks = n.div_ceil(Self::ROW_BLOCK).max(1);
        // Per-block [dγ | dβ] partials, reduced in block order below.
        let mut partials = vec![0.0f32; nblocks * 2 * d];
        struct RowBlock<'a> {
            go: &'a [f32],
            xh: &'a [f32],
            inv: &'a [f32],
            dx: &'a mut [f32],
            partial: &'a mut [f32],
        }
        let mut blocks: Vec<RowBlock> = grad_out
            .data()
            .chunks(Self::ROW_BLOCK * d)
            .zip(xhat.data().chunks(Self::ROW_BLOCK * d))
            .zip(inv_stds.chunks(Self::ROW_BLOCK))
            .zip(dx.data_mut().chunks_mut(Self::ROW_BLOCK * d))
            .zip(partials.chunks_mut(2 * d))
            .map(|((((go, xh), inv), dx), partial)| RowBlock {
                go,
                xh,
                inv,
                dx,
                partial,
            })
            .collect();
        crate::threadpool::fan_out(&mut blocks, |b| {
            let (dgamma, dbeta) = b.partial.split_at_mut(d);
            let mut dxhat = vec![0.0f32; d];
            for (r, &inv_std) in b.inv.iter().enumerate() {
                let go = &b.go[r * d..(r + 1) * d];
                let xh = &b.xh[r * d..(r + 1) * d];
                for j in 0..d {
                    dgamma[j] += go[j] * xh[j];
                    dbeta[j] += go[j];
                }
                // dxhat = go * gamma
                for j in 0..d {
                    dxhat[j] = go[j] * gamma[j];
                }
                let sum_dxhat: f32 = dxhat.iter().sum();
                let sum_dxhat_xhat: f32 = dxhat.iter().zip(xh).map(|(a, b)| a * b).sum();
                let out = &mut b.dx[r * d..(r + 1) * d];
                let dinv = d as f32;
                for j in 0..d {
                    out[j] =
                        inv_std / dinv * (dinv * dxhat[j] - sum_dxhat - xh[j] * sum_dxhat_xhat);
                }
            }
        });
        // Fixed-order reduction of the per-block parameter-grad partials.
        let dgamma = self.gamma.grad.row_mut(0);
        for b in 0..nblocks {
            for j in 0..d {
                dgamma[j] += partials[b * 2 * d + j];
            }
        }
        let dbeta = self.beta.grad.row_mut(0);
        for b in 0..nblocks {
            for j in 0..d {
                dbeta[j] += partials[b * 2 * d + d + j];
            }
        }
        dx
    }

    /// Visits parameters for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.gamma.count() + self.beta.count()
    }
}

/// Inverted dropout: scales kept activations by `1/(1-p)` during training,
/// identity at inference.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// New dropout with probability `p`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        Dropout { p, mask: None }
    }

    /// Training-mode forward: samples a fresh mask from `rng`.
    pub fn forward_train(&mut self, x: &Tensor, rng: &mut StdRng) -> Tensor {
        if self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut out = x.clone();
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.mask = Some(mask);
        out
    }

    /// Backward: applies the stored mask.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.mask {
            None => grad_out.clone(),
            Some(mask) => {
                let mut g = grad_out.clone();
                for (v, &m) in g.data_mut().iter_mut().zip(mask) {
                    *v *= m;
                }
                g
            }
        }
    }
}

/// GELU activation (tanh approximation) with cached-input backward.
#[derive(Debug, Clone, Default)]
pub struct Gelu {
    cached_input: Option<Tensor>,
    /// In [`InferencePrecision::Int8`] mode the inference forward uses a
    /// vectorized exp-based tanh (~1e-6 absolute error, far below the
    /// int8 quantization noise that mode already accepts). `Full` mode
    /// and training always use the exact scalar `tanh`.
    fast: bool,
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)

#[inline]
fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + 0.044_715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    let u = GELU_C * (x + 0.044_715 * x * x * x);
    let t = u.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * GELU_C * (1.0 + 3.0 * 0.044_715 * x * x)
}

impl Gelu {
    /// New GELU activation.
    pub fn new() -> Self {
        Gelu::default()
    }

    /// Forward with caching.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        y.data_mut().iter_mut().for_each(|v| *v = gelu_scalar(*v));
        self.cached_input = Some(x.clone());
        y
    }

    /// Switches the inference numeric mode (see the `fast` field).
    pub fn set_precision(&mut self, precision: InferencePrecision) {
        self.fast = matches!(precision, InferencePrecision::Int8);
    }

    /// Inference-only forward.
    pub fn forward_inference(&self, x: &Tensor) -> Tensor {
        let mut y = x.clone();
        self.forward_inference_inplace(&mut y);
        y
    }

    /// [`Self::forward_inference`] without the output clone — same values,
    /// for callers that own the activation buffer anyway (the FFN path).
    pub fn forward_inference_inplace(&self, x: &mut Tensor) {
        if self.fast {
            fast_gelu::gelu_slice(x.data_mut());
        } else {
            x.data_mut().iter_mut().for_each(|v| *v = gelu_scalar(*v));
        }
    }

    /// Backward through the activation.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .as_ref()
            .expect("backward called before forward");
        let mut g = grad_out.clone();
        for (gv, &xv) in g.data_mut().iter_mut().zip(x.data()) {
            *gv *= gelu_grad_scalar(xv);
        }
        g
    }
}

/// Vectorized GELU for the reduced-precision inference mode: the same
/// `0.5·x·(1 + tanh(C·(x + 0.044715·x³)))` formula, with the tanh
/// computed as `(e^v − 1)/(e^v + 1)` over `v = clamp(2u, ±30)` and a
/// Cody–Waite + degree-5 polynomial `e^v`. Absolute error vs the libm
/// path is ~1e-6 (asserted in tests) — invisible under the int8 drift
/// budget, ~50x cheaper than a scalar `tanhf` call per element.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod fast_gelu {
    use std::arch::x86_64::*;

    const ROUND_NEAREST: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

    /// `e^v` for `v ∈ [-30.5, 30.5]` (the clamped tanh argument range).
    #[inline]
    unsafe fn exp_approx(v: __m512) -> __m512 {
        let n = _mm512_roundscale_ps::<ROUND_NEAREST>(_mm512_mul_ps(
            v,
            _mm512_set1_ps(std::f32::consts::LOG2_E),
        ));
        // r = v − n·ln2, split high/low so r keeps full precision.
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(0.693_359_375), v);
        let r = _mm512_fnmadd_ps(n, _mm512_set1_ps(-2.121_944_4e-4), r);
        // Degree-5 Taylor on |r| ≤ ln2/2: relative error ~2e-6.
        let mut p = _mm512_set1_ps(1.0 / 120.0);
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0 / 24.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0 / 6.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(0.5));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0));
        p = _mm512_fmadd_ps(p, r, _mm512_set1_ps(1.0));
        // Scale by 2^n through the exponent field; |n| ≤ 26 keeps the
        // biased exponent well inside the finite range.
        let scale = _mm512_castsi512_ps(_mm512_slli_epi32::<23>(_mm512_add_epi32(
            _mm512_cvtps_epi32(n),
            _mm512_set1_epi32(127),
        )));
        _mm512_mul_ps(p, scale)
    }

    #[inline]
    unsafe fn gelu16(x: __m512) -> __m512 {
        let one = _mm512_set1_ps(1.0);
        let x2 = _mm512_mul_ps(x, x);
        let inner = _mm512_fmadd_ps(_mm512_mul_ps(_mm512_set1_ps(0.044_715), x2), x, x);
        let u = _mm512_mul_ps(_mm512_set1_ps(super::GELU_C), inner);
        // Past |v| = 30, `(e^v − 1)/(e^v + 1)` rounds to exactly ±1.0 in
        // f32 (2/(e^30+1) < 2^-25), so the saturated tails are exact —
        // crucial because `0.5·x·(1 + t)` amplifies any tanh error by x.
        let cap = _mm512_set1_ps(30.0);
        let v = _mm512_max_ps(
            _mm512_min_ps(_mm512_add_ps(u, u), cap),
            _mm512_sub_ps(_mm512_setzero_ps(), cap),
        );
        let e = exp_approx(v);
        let t = _mm512_div_ps(_mm512_sub_ps(e, one), _mm512_add_ps(e, one));
        _mm512_mul_ps(
            _mm512_mul_ps(_mm512_set1_ps(0.5), x),
            _mm512_add_ps(one, t),
        )
    }

    pub fn gelu_slice(data: &mut [f32]) {
        unsafe {
            let mut i = 0usize;
            while i + 16 <= data.len() {
                let x = _mm512_loadu_ps(data.as_ptr().add(i));
                _mm512_storeu_ps(data.as_mut_ptr().add(i), gelu16(x));
                i += 16;
            }
            if i < data.len() {
                let mask = (1u16 << (data.len() - i)) - 1;
                let x = _mm512_maskz_loadu_ps(mask, data.as_ptr().add(i));
                _mm512_mask_storeu_ps(data.as_mut_ptr().add(i), mask, gelu16(x));
            }
        }
    }
}

/// Portable fallback: the fast mode falls back to the exact scalar GELU —
/// no speedup, no additional drift.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod fast_gelu {
    pub fn gelu_slice(data: &mut [f32]) {
        data.iter_mut().for_each(|v| *v = super::gelu_scalar(*v));
    }
}

/// Vectorized LayerNorm for the reduced-precision inference mode: mean and
/// variance accumulate 16 lanes wide (per-lane partials reduced by the
/// fixed `_mm512_reduce_add_ps` tree), then one fused normalize+affine
/// sweep. The reduction order depends only on the row contents, so a row
/// normalizes to the same bits at any batch composition — the serving
/// fast-path invariant. Differs from the serial scalar sums by ordinary
/// f32 rounding (~1e-7 relative), far below the int8 drift budget.
#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
mod fast_layernorm {
    use super::Tensor;
    use std::arch::x86_64::*;

    #[inline]
    unsafe fn row_norm(row: &[f32], gamma: &[f32], beta: &[f32], eps: f32, out: &mut [f32]) {
        let d = row.len();
        let tail_at = d / 16 * 16;
        let tail = if d == tail_at { 0u16 } else { (1u16 << (d - tail_at)) - 1 };
        // Mean.
        let mut acc = _mm512_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= d {
            acc = _mm512_add_ps(acc, _mm512_loadu_ps(row.as_ptr().add(i)));
            i += 16;
        }
        if tail != 0 {
            acc = _mm512_add_ps(acc, _mm512_maskz_loadu_ps(tail, row.as_ptr().add(i)));
        }
        let mean = _mm512_reduce_add_ps(acc) / d as f32;
        // Variance: masked accumulation so past-the-end lanes (which
        // would read as 0 − mean) never contribute.
        let mv = _mm512_set1_ps(mean);
        let mut acc = _mm512_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= d {
            let df = _mm512_sub_ps(_mm512_loadu_ps(row.as_ptr().add(i)), mv);
            acc = _mm512_add_ps(acc, _mm512_mul_ps(df, df));
            i += 16;
        }
        if tail != 0 {
            let df = _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, row.as_ptr().add(i)), mv);
            acc = _mm512_add_ps(acc, _mm512_maskz_mov_ps(tail, _mm512_mul_ps(df, df)));
        }
        let var = _mm512_reduce_add_ps(acc) / d as f32;
        let iv = _mm512_set1_ps(1.0 / (var + eps).sqrt());
        // Normalize + affine: γ·((x − μ)·σ⁻¹) + β.
        let mut i = 0usize;
        while i + 16 <= d {
            let h = _mm512_mul_ps(_mm512_sub_ps(_mm512_loadu_ps(row.as_ptr().add(i)), mv), iv);
            let o = _mm512_fmadd_ps(_mm512_loadu_ps(gamma.as_ptr().add(i)), h, _mm512_loadu_ps(beta.as_ptr().add(i)));
            _mm512_storeu_ps(out.as_mut_ptr().add(i), o);
            i += 16;
        }
        if tail != 0 {
            let h = _mm512_mul_ps(_mm512_sub_ps(_mm512_maskz_loadu_ps(tail, row.as_ptr().add(i)), mv), iv);
            let o = _mm512_fmadd_ps(
                _mm512_maskz_loadu_ps(tail, gamma.as_ptr().add(i)),
                h,
                _mm512_maskz_loadu_ps(tail, beta.as_ptr().add(i)),
            );
            _mm512_mask_storeu_ps(out.as_mut_ptr().add(i), tail, o);
        }
    }

    pub fn forward(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Tensor {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Tensor::zeros(n, d);
        for i in 0..n {
            let row = x.row(i);
            unsafe {
                // row() borrows x immutably; the out row is disjoint.
                let o = std::slice::from_raw_parts_mut(out.data_mut().as_mut_ptr().add(i * d), d);
                row_norm(row, gamma, beta, eps, o);
            }
        }
        out
    }
}

/// Portable fallback: the exact serial normalization, minus the x̂ cache
/// allocation — same bits as the training path's forward.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512f")))]
mod fast_layernorm {
    use super::Tensor;

    pub fn forward(x: &Tensor, gamma: &[f32], beta: &[f32], eps: f32) -> Tensor {
        let (n, d) = (x.rows(), x.cols());
        let mut out = Tensor::zeros(n, d);
        for i in 0..n {
            let row = x.row(i);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + eps).sqrt();
            let o = &mut out.data_mut()[i * d..(i + 1) * d];
            for j in 0..d {
                o[j] = gamma[j] * ((row[j] - mean) * inv_std) + beta[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn linear_forward_hand_computed() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.weight.value = Tensor::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        lin.bias.value = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        let x = Tensor::from_vec(1, 2, vec![2.0, 3.0]);
        let y = lin.forward(&x);
        assert_eq!(y.data(), &[3.0, 2.0]);
        assert_eq!(lin.forward_inference(&x).data(), y.data());
    }

    #[test]
    fn linear_backward_shapes_and_bias_grad() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32 * 0.1).collect());
        let _ = lin.forward(&x);
        let dy = Tensor::from_vec(4, 2, vec![1.0; 8]);
        let dx = lin.backward(&dy);
        assert_eq!((dx.rows(), dx.cols()), (4, 3));
        // Bias grad = column sums of dY = 4 for both outputs.
        assert_eq!(lin.bias.grad.data(), &[4.0, 4.0]);
        assert_eq!(lin.param_count(), 3 * 2 + 2);
    }

    #[test]
    fn embedding_lookup_and_scatter() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let ids = [3u32, 7, 3];
        let out = emb.forward(&ids);
        assert_eq!(out.row(0), emb.table.value.row(3));
        assert_eq!(out.row(2), emb.table.value.row(3));
        let mut dy = Tensor::zeros(3, 4);
        dy.row_mut(0).iter_mut().for_each(|v| *v = 1.0);
        dy.row_mut(2).iter_mut().for_each(|v| *v = 1.0);
        emb.backward(&dy);
        // Token 3 was used twice with grad 1 → accumulated grad 2.
        assert!(emb
            .table
            .grad
            .row(3)
            .iter()
            .all(|&g| (g - 2.0).abs() < 1e-6));
        assert!(emb.table.grad.row(7).iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn embedding_rejects_oov() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut emb = Embedding::new(4, 2, &mut rng);
        let _ = emb.forward(&[4u32]);
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut ln = LayerNorm::new(4);
        let x = Tensor::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]);
        let y = ln.forward(&x);
        for i in 0..2 {
            let row = y.row(i);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_gamma_beta_affect_output() {
        let mut ln = LayerNorm::new(2);
        ln.gamma.value = Tensor::from_vec(1, 2, vec![2.0, 2.0]);
        ln.beta.value = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let x = Tensor::from_vec(1, 2, vec![0.0, 2.0]);
        let y = ln.forward(&x);
        // Normalized row is (-1, 1) (up to eps) → output ≈ (-1, 3).
        assert!((y.get(0, 0) + 1.0).abs() < 1e-2);
        assert!((y.get(0, 1) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        let mut d = Dropout::new(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let x = Tensor::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward_train(&x, &mut rng), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let x = Tensor::from_vec(1, 10_000, vec![1.0; 10_000]);
        let y = d.forward_train(&x, &mut rng);
        let mean: f32 = y.data().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Backward applies the same mask.
        let g = d.backward(&x);
        assert_eq!(g, y);
    }

    #[test]
    fn gelu_reference_points() {
        let mut g = Gelu::new();
        let x = Tensor::from_vec(1, 3, vec![0.0, 1.0, -1.0]);
        let y = g.forward(&x);
        assert_eq!(y.get(0, 0), 0.0);
        assert!((y.get(0, 1) - 0.8412).abs() < 1e-3);
        assert!((y.get(0, 2) + 0.1588).abs() < 1e-3);
    }

    #[test]
    fn fast_gelu_tracks_exact_gelu_within_drift_budget() {
        // Dense sweep over the active range plus far tails: the fast
        // (Int8-mode) activation must stay within ~1e-5 absolute of the
        // exact tanh GELU everywhere, and the Full-mode path must remain
        // bitwise the scalar one.
        let n = 4001;
        let vals: Vec<f32> = (0..n)
            .map(|i| -20.0 + 40.0 * i as f32 / (n - 1) as f32)
            .chain([-1e6f32, -50.0, 50.0, 1e6].into_iter())
            .collect();
        let x = Tensor::from_vec(1, vals.len(), vals.clone());
        let mut g = Gelu::new();
        let exact = g.forward_inference(&x);
        g.set_precision(InferencePrecision::Int8);
        let fast = g.forward_inference(&x);
        for ((&v, e), f) in vals.iter().zip(exact.data()).zip(fast.data()) {
            assert!(
                (e - f).abs() <= 2e-5,
                "fast gelu off at x = {v}: exact {e}, fast {f}"
            );
        }
        g.set_precision(InferencePrecision::Full);
        let restored = g.forward_inference(&x);
        assert_eq!(
            restored.data(),
            exact.data(),
            "Full mode must restore the exact activation"
        );
    }

    #[test]
    fn gelu_gradient_matches_finite_difference() {
        let mut g = Gelu::new();
        for &x0 in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let x = Tensor::from_vec(1, 1, vec![x0]);
            let _ = g.forward(&x);
            let dy = Tensor::from_vec(1, 1, vec![1.0]);
            let analytic = g.backward(&dy).get(0, 0);
            let h = 1e-3;
            let numeric = (gelu_scalar(x0 + h) - gelu_scalar(x0 - h)) / (2.0 * h);
            assert!(
                (analytic - numeric).abs() < 1e-3,
                "at {x0}: {analytic} vs {numeric}"
            );
        }
    }
}
