//! # em-nn — from-scratch neural-network substrate
//!
//! A compact, dependency-free (beyond `rand`) neural-network library
//! implementing exactly what the language-model substrate (`em-lm`) needs:
//!
//! * 2-D `f32` tensors with fused-transpose matmuls ([`tensor`]), backed
//!   by a cache-blocked, register-tiled, optionally parallel GEMM
//!   ([`gemm`]) that is bitwise-identical to the naive loops kept in
//!   [`reference`];
//! * an opt-in int8 inference GEMM for frozen weights with exact i32
//!   accumulation and a bitwise-reproducible dequant ([`qgemm`]);
//! * a global worker-thread budget shared by every parallel region in the
//!   workspace ([`threadpool`]);
//! * trainable parameters with Xavier / GPT-style init ([`param`]);
//! * Linear / Embedding / LayerNorm / Dropout / GELU layers with explicit
//!   forward-backward passes ([`layers`]);
//! * masked multi-head self-attention ([`attention`]) and pre-norm
//!   transformer encoder blocks ([`block`]);
//! * binary cross-entropy with logits ([`loss`]);
//! * Adam / SGD optimizers with gradient clipping, plus fused arena-backed
//!   variants whose whole step tail (norm → clip → update → zero) runs as
//!   one blocked parallel pass ([`optim`]);
//! * finite-difference gradient checking, used to verify every backward
//!   pass in this crate's test suite ([`gradcheck`]).

pub mod attention;
pub mod block;
pub mod gemm;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod qgemm;
pub mod reference;
pub mod tensor;
pub mod threadpool;

pub use attention::{fused_attention, MultiHeadAttention};
pub use block::TransformerBlock;
pub use gradcheck::{max_relative_error, numeric_gradient};
pub use layers::{Dropout, Embedding, Gelu, LayerNorm, Linear};
pub use loss::{accuracy, bce_with_logits, sigmoid_f32, softplus};
pub use optim::{clip_grad_norm, zero_grads, Adam, FusedAdam, FusedSgd, Sgd, FUSED_BLOCK};
pub use param::Param;
pub use qgemm::{InferencePrecision, QuantizedActivations, QuantizedMatrix};
pub use tensor::{dot_f32, softmax_inplace, Tensor};
