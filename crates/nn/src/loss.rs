//! Loss functions: binary cross-entropy with logits (the matching head's
//! objective) and its gradient, plus optional positive-class weighting for
//! imbalanced pair data.

/// Numerically stable `log(1 + exp(x))`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Stable sigmoid.
#[inline]
pub fn sigmoid_f32(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Binary cross-entropy with logits.
///
/// Returns `(mean loss, per-example dLoss/dlogit)`. `pos_weight` scales the
/// positive-class term (`> 1` boosts recall on skewed data; 1.0 = standard).
pub fn bce_with_logits(logits: &[f32], labels: &[bool], pos_weight: f32) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), labels.len(), "logits and labels must align");
    assert!(!logits.is_empty(), "empty batch");
    let n = logits.len() as f32;
    let mut total = 0.0f32;
    let mut grads = Vec::with_capacity(logits.len());
    for (&z, &y) in logits.iter().zip(labels) {
        let p = sigmoid_f32(z);
        if y {
            // loss = -w · log σ(z) = w · softplus(-z)
            total += pos_weight * softplus(-z);
            grads.push(pos_weight * (p - 1.0) / n);
        } else {
            // loss = -log(1 - σ(z)) = softplus(z)
            total += softplus(z);
            grads.push(p / n);
        }
    }
    (total / n, grads)
}

/// Classification accuracy of logits at threshold 0.
pub fn accuracy(logits: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(logits.len(), labels.len());
    if logits.is_empty() {
        return 0.0;
    }
    let correct = logits
        .iter()
        .zip(labels)
        .filter(|(&z, &y)| (z >= 0.0) == y)
        .count();
    correct as f64 / logits.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softplus_reference() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert!((softplus(100.0) - 100.0).abs() < 1e-4);
        assert!(softplus(-100.0).abs() < 1e-6);
    }

    #[test]
    fn bce_perfect_predictions_have_low_loss() {
        let logits = [10.0, -10.0, 10.0];
        let labels = [true, false, true];
        let (loss, _) = bce_with_logits(&logits, &labels, 1.0);
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn bce_wrong_predictions_have_high_loss() {
        let logits = [-10.0, 10.0];
        let labels = [true, false];
        let (loss, _) = bce_with_logits(&logits, &labels, 1.0);
        assert!(loss > 5.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let labels = [true, false, true, false];
        for &z0 in &[-2.0f32, -0.3, 0.0, 0.7, 2.5] {
            let logits = [z0, z0 * 0.5, -z0, 1.0];
            let (_, grads) = bce_with_logits(&logits, &labels, 1.0);
            for i in 0..4 {
                let h = 1e-3;
                let mut plus = logits;
                plus[i] += h;
                let mut minus = logits;
                minus[i] -= h;
                let (lp, _) = bce_with_logits(&plus, &labels, 1.0);
                let (lm, _) = bce_with_logits(&minus, &labels, 1.0);
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (grads[i] - numeric).abs() < 1e-3,
                    "grad[{i}] {} vs numeric {numeric}",
                    grads[i]
                );
            }
        }
    }

    #[test]
    fn pos_weight_scales_positive_gradient() {
        let logits = [0.0];
        let (_, g1) = bce_with_logits(&logits, &[true], 1.0);
        let (_, g3) = bce_with_logits(&logits, &[true], 3.0);
        assert!((g3[0] / g1[0] - 3.0).abs() < 1e-5);
        // Negative examples unaffected.
        let (_, n1) = bce_with_logits(&logits, &[false], 1.0);
        let (_, n3) = bce_with_logits(&logits, &[false], 3.0);
        assert_eq!(n1[0], n3[0]);
    }

    #[test]
    fn accuracy_counts_threshold_zero() {
        let logits = [1.0, -1.0, 1.0, -1.0];
        let labels = [true, false, false, false];
        assert!((accuracy(&logits, &labels) - 0.75).abs() < 1e-12);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = bce_with_logits(&[], &[], 1.0);
    }
}
