//! Optimizers: SGD with momentum and Adam, with optional gradient clipping.
//!
//! Optimizers are stateful per parameter slot; the caller must visit
//! parameters in a stable order (which our models' `params_mut()` provide).

use crate::param::Param;

/// Adam optimizer state and hyper-parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style), 0 to disable.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// New Adam optimizer with the given learning rate and defaults
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-8, no weight decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update over all parameters, then leaves the gradients
    /// untouched (call [`zero_grads`] afterwards).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            assert_eq!(
                m.len(),
                p.value.len(),
                "parameter shape changed mid-training"
            );
            let grads = p.grad.data();
            let values = p.value.data().to_vec();
            for i in 0..m.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            }
            let data = p.value.data_mut();
            for i in 0..m.len() {
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                let mut upd = self.lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += self.lr * self.weight_decay * values[i];
                }
                data[i] -= upd;
            }
        }
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update over all parameters.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (idx, p) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[idx];
            let grads = p.grad.data().to_vec();
            let data = p.value.data_mut();
            for i in 0..vel.len() {
                vel[i] = self.momentum * vel[i] + grads[i];
                data[i] -= self.lr * vel[i];
            }
        }
    }
}

/// Clips the global gradient norm to `max_norm`; returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.scale(scale);
        }
    }
    norm
}

/// Zeroes every parameter's gradient accumulator.
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quad_problem() -> Param {
        // Minimize f(w) = ||w - 3||² starting at 0.
        Param::zeros(1, 4)
    }

    fn quad_grad(p: &mut Param) {
        let vals = p.value.data().to_vec();
        for (g, v) in p.grad.data_mut().iter_mut().zip(vals) {
            *g = 2.0 * (v - 3.0);
        }
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let mut p = quad_problem();
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
            zero_grads(&mut [&mut p]);
        }
        assert!(p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2));
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut p = quad_problem();
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..300 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
            zero_grads(&mut [&mut p]);
        }
        assert!(p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2));
    }

    #[test]
    fn adam_weight_decay_shrinks_toward_zero() {
        // With a zero gradient and weight decay, values decay geometrically.
        let mut p = Param::zeros(1, 1);
        p.value.data_mut()[0] = 1.0;
        let mut opt = Adam::new(0.1);
        opt.weight_decay = 0.5;
        for _ in 0..10 {
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0] < 1.0);
        assert!(p.value.data()[0] > 0.0);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut p = Param::zeros(1, 2);
        p.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = p.grad.data().iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut p = Param::zeros(1, 2);
        p.grad = Tensor::from_vec(1, 2, vec![0.3, 0.4]);
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(p.grad.data(), &[0.3, 0.4]);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut a = Param::zeros(1, 2);
        let mut b = Param::zeros(2, 2);
        a.grad.data_mut()[0] = 1.0;
        b.grad.data_mut()[3] = 2.0;
        zero_grads(&mut [&mut a, &mut b]);
        assert!(a.grad.data().iter().all(|&g| g == 0.0));
        assert!(b.grad.data().iter().all(|&g| g == 0.0));
    }
}
