//! Optimizers: SGD with momentum and Adam, with optional gradient clipping,
//! plus the fused, arena-backed variants the fine-tuning hot loop uses.
//!
//! Optimizers are stateful per parameter slot; the caller must visit
//! parameters in a stable order (which our models' `params_mut()` provide).
//!
//! # Fused optimizers
//!
//! [`FusedAdam`] and [`FusedSgd`] keep their moment state in one contiguous
//! arena instead of a `Vec<Vec<f32>>` per parameter, and collapse the whole
//! training-step tail — global grad-norm reduction, clipping, the
//! bias-corrected (decoupled-weight-decay) update, and gradient zeroing —
//! into a single pass over fixed-size parameter blocks fanned out via
//! [`crate::threadpool::fan_out`]. Two properties are load-bearing:
//!
//! * **No per-step clones.** The seed `Adam::step` cloned every gradient
//!   and value tensor each step (`to_vec()`); the fused path reads and
//!   writes parameter slices in place and zeroes gradients as it goes, so
//!   the optimizer allocates nothing after the first step.
//! * **Bitwise thread-count invariance.** The only cross-element reduction
//!   is the gradient norm; it is computed as per-block serial
//!   [`f32::mul_add`] sums reduced in fixed (parameter, block) order, so
//!   any worker partition yields identical bits. The update itself is
//!   element-wise independent. `em_nn::reference::{grad_norm, adam_update,
//!   sgd_update}` are the naive single-threaded oracles the property suite
//!   (`tests/optim_equivalence.rs`) compares against, bit for bit.

use crate::param::Param;
use crate::reference;
use crate::threadpool;

/// Elements per fused-optimizer block: the unit of both the fixed-order
/// grad-norm reduction and the parallel update fan-out. Blocks never span
/// parameter boundaries. The value is part of the numeric contract (the
/// reference oracle reduces with the same block size), so changing it
/// changes training bit-streams.
pub const FUSED_BLOCK: usize = 4096;

/// Adam optimizer state and hyper-parameters.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style), 0 to disable.
    pub weight_decay: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// New Adam optimizer with the given learning rate and defaults
    /// β₁ = 0.9, β₂ = 0.999, ε = 1e-8, no weight decay.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update over all parameters, then leaves the gradients
    /// untouched (call [`zero_grads`] afterwards).
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.m[idx];
            let v = &mut self.v[idx];
            let Param { value, grad } = &mut **p;
            assert_eq!(m.len(), value.len(), "parameter shape changed mid-training");
            // Value and gradient are separate tensors, so both sides borrow
            // directly — the seed implementation cloned both per step.
            let grads = grad.data();
            let data = value.data_mut();
            for i in 0..m.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                let mut upd = self.lr * mhat / (vhat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += self.lr * self.weight_decay * data[i];
                }
                data[i] -= upd;
            }
        }
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update over all parameters.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (idx, p) in params.iter_mut().enumerate() {
            let vel = &mut self.velocity[idx];
            let Param { value, grad } = &mut **p;
            let grads = grad.data();
            let data = value.data_mut();
            for i in 0..vel.len() {
                vel[i] = self.momentum * vel[i] + grads[i];
                data[i] -= self.lr * vel[i];
            }
        }
    }
}

/// Clips the global gradient norm to `max_norm`; returns the pre-clip norm.
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.scale(scale);
        }
    }
    norm
}

/// Zeroes every parameter's gradient accumulator.
pub fn zero_grads(params: &mut [&mut Param]) {
    for p in params.iter_mut() {
        p.zero_grad();
    }
}

// ---------------------------------------------------------------------------
// Fused arena-backed optimizers
// ---------------------------------------------------------------------------

/// One mutable update block: disjoint slices of a parameter's value and
/// gradient plus the matching arena slices, so blocks can be fanned out
/// across workers without any synchronization.
struct UpdateBlock<'a> {
    value: &'a mut [f32],
    grad: &'a mut [f32],
    m: &'a mut [f32],
    v: &'a mut [f32],
}

/// One gradient-norm block: a read-only grad slice plus the slot its
/// serial `Σ g²` lands in.
struct NormBlock<'a> {
    grad: &'a [f32],
    sum: &'a mut f32,
}

/// Fixed-order blocked gradient norm: block sums computed (possibly
/// concurrently) with serial `mul_add` inner loops, then reduced serially
/// in (parameter, block) order — bitwise equal to
/// [`reference::grad_norm`] at every thread count.
fn fused_grad_norm(params: &[&mut Param]) -> f32 {
    let nblocks: usize = params
        .iter()
        .map(|p| p.grad.len().div_ceil(FUSED_BLOCK))
        .sum();
    let mut sums = vec![0.0f32; nblocks];
    {
        let mut slots = sums.iter_mut();
        let mut blocks: Vec<NormBlock> = Vec::with_capacity(nblocks);
        for p in params.iter() {
            for grad in p.grad.data().chunks(FUSED_BLOCK) {
                blocks.push(NormBlock {
                    grad,
                    sum: slots.next().expect("block/slot counts agree"),
                });
            }
        }
        threadpool::fan_out(&mut blocks, |b| {
            let mut acc = 0.0f32;
            for &x in b.grad {
                acc = x.mul_add(x, acc);
            }
            *b.sum = acc;
        });
    }
    let mut total = 0.0f32;
    for s in &sums {
        total += s;
    }
    total.sqrt()
}

/// Splits every parameter (and the aligned arena regions) into
/// [`FUSED_BLOCK`]-sized update blocks.
fn update_blocks<'a>(
    params: &'a mut [&mut Param],
    arena_m: &'a mut [f32],
    arena_v: &'a mut [f32],
) -> Vec<UpdateBlock<'a>> {
    let mut blocks = Vec::new();
    let mut m_rest = arena_m;
    let mut v_rest = arena_v;
    for p in params.iter_mut() {
        let Param { value, grad } = &mut **p;
        let len = value.len();
        let (m_p, m_next) = m_rest.split_at_mut(len);
        let (v_p, v_next) = v_rest.split_at_mut(len);
        m_rest = m_next;
        v_rest = v_next;
        for (((value, grad), m), v) in value
            .data_mut()
            .chunks_mut(FUSED_BLOCK)
            .zip(grad.data_mut().chunks_mut(FUSED_BLOCK))
            .zip(m_p.chunks_mut(FUSED_BLOCK))
            .zip(v_p.chunks_mut(FUSED_BLOCK))
        {
            blocks.push(UpdateBlock { value, grad, m, v });
        }
    }
    blocks
}

/// Arena-backed fused AdamW: one contiguous `m`/`v` arena across all
/// parameters, and a single blocked pass per step that reads the clipped
/// gradient, updates both moments, applies the bias-corrected
/// (weight-decayed) update, and zeroes the gradient. See the module docs
/// for the threading/bitwise contract.
#[derive(Debug, Clone)]
pub struct FusedAdam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW style), 0 to disable.
    pub weight_decay: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl FusedAdam {
    /// New fused Adam with the same defaults as [`Adam::new`].
    pub fn new(lr: f32) -> Self {
        FusedAdam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// One fused training-step tail: grad norm → clip → AdamW update →
    /// gradient zeroing, in one blocked parallel pass over the parameters.
    ///
    /// `clip` is the max global gradient norm (`None` skips the norm
    /// reduction entirely). Returns the pre-clip norm (0.0 when `clip` is
    /// `None`). Gradients are always zeroed on return — the fused
    /// replacement for the seed's `clip_grad_norm` + `Adam::step` +
    /// `zero_grads` sequence.
    pub fn step(&mut self, params: &mut [&mut Param], clip: Option<f32>) -> f32 {
        self.t += 1;
        let total_elems: usize = params.iter().map(|p| p.value.len()).sum();
        if self.m.len() != total_elems {
            assert!(self.t == 1, "parameter shape changed mid-training");
            self.m = vec![0.0; total_elems];
            self.v = vec![0.0; total_elems];
        }
        let _span = em_obs::span!(
            "optim.step",
            kind = "fused_adam",
            params = params.len(),
            elems = total_elems,
        );
        let norm = clip.map(|_| fused_grad_norm(params)).unwrap_or(0.0);
        let scale = clip.map_or(1.0, |c| reference::clip_scale(norm, c));
        let (lr, beta1, beta2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let bc1 = 1.0 - beta1.powi(self.t as i32);
        let bc2 = 1.0 - beta2.powi(self.t as i32);
        let mut blocks = update_blocks(params, &mut self.m, &mut self.v);
        threadpool::fan_out(&mut blocks, |b| {
            // Identical per-element op order to `reference::adam_update`.
            for i in 0..b.value.len() {
                let g = b.grad[i] * scale;
                b.m[i] = beta1 * b.m[i] + (1.0 - beta1) * g;
                b.v[i] = beta2 * b.v[i] + (1.0 - beta2) * g * g;
                let mhat = b.m[i] / bc1;
                let vhat = b.v[i] / bc2;
                let mut upd = lr * mhat / (vhat.sqrt() + eps);
                if wd > 0.0 {
                    upd += lr * wd * b.value[i];
                }
                b.value[i] -= upd;
                b.grad[i] = 0.0;
            }
        });
        norm
    }
}

/// Arena-backed fused momentum SGD: contiguous velocity arena, one blocked
/// pass fusing clip → momentum update → gradient zeroing. Shares the
/// fixed-order norm reduction (and its bitwise contract) with
/// [`FusedAdam`].
#[derive(Debug, Clone)]
pub struct FusedSgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl FusedSgd {
    /// New fused SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        FusedSgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// One fused step: grad norm → clip → momentum update → gradient
    /// zeroing. Semantics of `clip` and the return value match
    /// [`FusedAdam::step`].
    pub fn step(&mut self, params: &mut [&mut Param], clip: Option<f32>) -> f32 {
        let total_elems: usize = params.iter().map(|p| p.value.len()).sum();
        if self.velocity.len() != total_elems {
            assert!(
                self.velocity.is_empty(),
                "parameter shape changed mid-training"
            );
            self.velocity = vec![0.0; total_elems];
        }
        let _span = em_obs::span!(
            "optim.step",
            kind = "fused_sgd",
            params = params.len(),
            elems = total_elems,
        );
        let norm = clip.map(|_| fused_grad_norm(params)).unwrap_or(0.0);
        let scale = clip.map_or(1.0, |c| reference::clip_scale(norm, c));
        let (lr, momentum) = (self.lr, self.momentum);
        let mut blocks = Vec::new();
        let mut vel_rest: &mut [f32] = &mut self.velocity;
        for p in params.iter_mut() {
            let Param { value, grad } = &mut **p;
            let len = value.len();
            let (vel_p, vel_next) = vel_rest.split_at_mut(len);
            vel_rest = vel_next;
            for ((value, grad), vel) in value
                .data_mut()
                .chunks_mut(FUSED_BLOCK)
                .zip(grad.data_mut().chunks_mut(FUSED_BLOCK))
                .zip(vel_p.chunks_mut(FUSED_BLOCK))
            {
                blocks.push((value, grad, vel));
            }
        }
        threadpool::fan_out(&mut blocks, |(value, grad, vel)| {
            // Identical per-element op order to `reference::sgd_update`.
            for i in 0..value.len() {
                let g = grad[i] * scale;
                vel[i] = momentum * vel[i] + g;
                value[i] -= lr * vel[i];
                grad[i] = 0.0;
            }
        });
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn quad_problem() -> Param {
        // Minimize f(w) = ||w - 3||² starting at 0.
        Param::zeros(1, 4)
    }

    fn quad_grad(p: &mut Param) {
        let vals = p.value.data().to_vec();
        for (g, v) in p.grad.data_mut().iter_mut().zip(vals) {
            *g = 2.0 * (v - 3.0);
        }
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let mut p = quad_problem();
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
            zero_grads(&mut [&mut p]);
        }
        assert!(p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2));
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn fused_adam_converges_on_a_quadratic() {
        let mut p = quad_problem();
        let mut opt = FusedAdam::new(0.1);
        for _ in 0..500 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p], None);
        }
        assert!(p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2));
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn fused_adam_matches_legacy_adam_without_clipping() {
        // With no clipping in play the fused per-element math is the exact
        // op sequence of the (fixed) legacy Adam, so the two trajectories
        // agree bitwise.
        let mut a = quad_problem();
        let mut b = quad_problem();
        let mut legacy = Adam::new(0.05);
        let mut fused = FusedAdam::new(0.05);
        for _ in 0..50 {
            quad_grad(&mut a);
            legacy.step(&mut [&mut a]);
            zero_grads(&mut [&mut a]);
            quad_grad(&mut b);
            fused.step(&mut [&mut b], None);
        }
        assert_eq!(a.value.data(), b.value.data());
    }

    #[test]
    fn fused_adam_zeroes_gradients() {
        let mut p = quad_problem();
        quad_grad(&mut p);
        let mut opt = FusedAdam::new(0.1);
        opt.step(&mut [&mut p], Some(1.0));
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn fused_step_returns_preclip_norm() {
        let mut p = Param::zeros(1, 2);
        p.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let mut opt = FusedAdam::new(0.0);
        let norm = opt.step(&mut [&mut p], Some(1.0));
        assert!((norm - 5.0).abs() < 1e-6);
        let mut q = Param::zeros(1, 2);
        q.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let mut sgd = FusedSgd::new(0.0, 0.0);
        let norm = sgd.step(&mut [&mut q], Some(1.0));
        assert!((norm - 5.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_with_momentum_converges() {
        let mut p = quad_problem();
        let mut opt = Sgd::new(0.05, 0.9);
        for _ in 0..300 {
            quad_grad(&mut p);
            opt.step(&mut [&mut p]);
            zero_grads(&mut [&mut p]);
        }
        assert!(p.value.data().iter().all(|v| (v - 3.0).abs() < 1e-2));
    }

    #[test]
    fn fused_sgd_matches_legacy_sgd_without_clipping() {
        let mut a = quad_problem();
        let mut b = quad_problem();
        let mut legacy = Sgd::new(0.05, 0.9);
        let mut fused = FusedSgd::new(0.05, 0.9);
        for _ in 0..100 {
            quad_grad(&mut a);
            legacy.step(&mut [&mut a]);
            zero_grads(&mut [&mut a]);
            quad_grad(&mut b);
            fused.step(&mut [&mut b], None);
        }
        assert_eq!(a.value.data(), b.value.data());
    }

    #[test]
    fn adam_weight_decay_shrinks_toward_zero() {
        // With a zero gradient and weight decay, values decay geometrically.
        let mut p = Param::zeros(1, 1);
        p.value.data_mut()[0] = 1.0;
        let mut opt = Adam::new(0.1);
        opt.weight_decay = 0.5;
        for _ in 0..10 {
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data()[0] < 1.0);
        assert!(p.value.data()[0] > 0.0);
    }

    #[test]
    fn clip_rescales_large_gradients() {
        let mut p = Param::zeros(1, 2);
        p.grad = Tensor::from_vec(1, 2, vec![3.0, 4.0]); // norm 5
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = p.grad.data().iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clip_leaves_small_gradients_alone() {
        let mut p = Param::zeros(1, 2);
        p.grad = Tensor::from_vec(1, 2, vec![0.3, 0.4]);
        let pre = clip_grad_norm(&mut [&mut p], 1.0);
        assert!((pre - 0.5).abs() < 1e-6);
        assert_eq!(p.grad.data(), &[0.3, 0.4]);
    }

    #[test]
    fn zero_grads_clears_all() {
        let mut a = Param::zeros(1, 2);
        let mut b = Param::zeros(2, 2);
        a.grad.data_mut()[0] = 1.0;
        b.grad.data_mut()[3] = 2.0;
        zero_grads(&mut [&mut a, &mut b]);
        assert!(a.grad.data().iter().all(|&g| g == 0.0));
        assert!(b.grad.data().iter().all(|&g| g == 0.0));
    }
}
