//! Trainable parameters: a value tensor paired with an accumulated
//! gradient, plus Xavier/He initialization.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// A trainable parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Zero-initialized parameter.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: Tensor::zeros(rows, cols),
            grad: Tensor::zeros(rows, cols),
        }
    }

    /// Xavier/Glorot uniform initialization: `U(-a, a)` with
    /// `a = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let a = (6.0 / (rows + cols) as f64).sqrt() as f32;
        let mut value = Tensor::zeros(rows, cols);
        for v in value.data_mut() {
            *v = rng.gen_range(-a..a);
        }
        Param {
            grad: Tensor::zeros(rows, cols),
            value,
        }
    }

    /// Small-normal initialization for embeddings (`σ = 0.02`, GPT-style),
    /// via Box-Muller.
    pub fn normal_embedding(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let mut value = Tensor::zeros(rows, cols);
        for v in value.data_mut() {
            let u1: f64 = rng.gen_range(1e-9..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *v = (0.02 * z) as f32;
        }
        Param {
            grad: Tensor::zeros(rows, cols),
            value,
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.zero();
    }

    /// Number of scalar parameters.
    pub fn count(&self) -> usize {
        self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Param::xavier(16, 16, &mut rng);
        let a = (6.0f64 / 32.0).sqrt() as f32;
        assert!(p.value.data().iter().all(|v| v.abs() <= a));
        // Not all zero.
        assert!(p.value.frobenius_norm() > 0.0);
        assert_eq!(p.grad.frobenius_norm(), 0.0);
    }

    #[test]
    fn embedding_init_is_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::normal_embedding(100, 8, &mut rng);
        let rms = p.value.frobenius_norm() / (p.count() as f32).sqrt();
        assert!(rms < 0.05, "rms {rms}");
        assert!(rms > 0.005, "rms {rms}");
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(2, 2);
        p.grad.data_mut()[0] = 3.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 4]);
    }

    #[test]
    fn init_is_deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = Param::xavier(4, 4, &mut r1);
        let b = Param::xavier(4, 4, &mut r2);
        assert_eq!(a.value, b.value);
    }
}
