//! Quantized int8 inference GEMM for frozen weight matrices.
//!
//! The zoo scoring path runs the same frozen weights against millions of
//! prompts; this module trades a one-time per-matrix quantization pass for
//! int8 arithmetic on every subsequent forward:
//!
//! * **Weights** are quantized once, per output column, with a symmetric
//!   scale `sw[j] = maxabs(col j) / 127` and packed into the same
//!   `NR`-wide column panels as [`crate::gemm`], except that each panel
//!   stores `k` in groups of 4 so one 64-byte load feeds a whole
//!   `vpdpbusd` step.
//! * **Activations** are quantized per row on the fly with a dynamic
//!   symmetric scale `sx[i] = maxabs(row i) / 127`, then offset by +128
//!   into `u8` so the AVX-512 VNNI `u8 × i8` dot product applies. The
//!   offset is exact to undo: the accumulator picks up
//!   `128 · Σ_p qw[p][j]`, which the per-column `col_sums` remove before
//!   the `f32` dequant-rescale.
//! * **Accumulation** is `i32` and therefore *exact*: no rounding happens
//!   between the quantization points, so the result is independent of
//!   loop order, tiling, and thread count by construction — the
//!   packed/vectorized kernel is **bitwise identical** to the naive
//!   triple loop in [`crate::reference::qgemm`] (asserted by
//!   `tests/qgemm_equivalence.rs`).
//!
//! Overflow cannot occur for any realistic layer: each product is at most
//! `255 · 127` and `k` is bounded by `MAX_K` (debug-asserted), keeping
//! `|acc| ≤ 255 · 127 · MAX_K < i32::MAX`.
//!
//! The error contract is *drift-bounded, not bitwise*: quantized scores
//! differ from `f32` scores by O(1/127) per operand. The end-to-end bound
//! (|Δscore| ≤ ε, prediction flip rate < 0.5%) is enforced by the em-lm
//! equivalence suite; training and the default inference path never touch
//! this module, so the `f32` bit-streams are unchanged.

use crate::tensor::Tensor;
use crate::threadpool;

/// Numeric mode of the inference-only forward pass.
///
/// `Full` is the default and leaves every score bitwise identical to the
/// pre-quantization code; `Int8` routes frozen-weight matmuls through
/// [`qgemm`] within the drift bound above.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InferencePrecision {
    /// Unquantized `f32` GEMM (bitwise-reproducible baseline).
    #[default]
    Full,
    /// Per-column symmetric int8 weights, per-row dynamic int8
    /// activations, exact i32 accumulation, f32 dequant-rescale.
    Int8,
}

/// Metric handles resolved once; quantized GEMM sits on the zoo scoring
/// hot path, so the registry lock must never sit on it.
struct QgemmMetrics {
    calls: std::sync::Arc<em_obs::metrics::Counter>,
    flops: std::sync::Arc<em_obs::metrics::Counter>,
}

fn qgemm_metrics() -> &'static QgemmMetrics {
    static METRICS: std::sync::OnceLock<QgemmMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| QgemmMetrics {
        calls: em_obs::metrics::counter("qgemm.calls"),
        flops: em_obs::metrics::counter("qgemm.flops"),
    })
}

/// Rows of activations per microkernel tile.
pub const MR: usize = 8;
/// Output columns per packed weight panel.
pub const NR: usize = 32;
/// `k` positions consumed per VNNI step (`vpdpbusd` reduces 4 bytes).
const KG: usize = 4;

/// Largest supported reduction depth: `255 · 127 · MAX_K` must stay below
/// `i32::MAX`. Far above any layer this workspace builds (`k ≤ 1024`).
pub const MAX_K: usize = 1 << 16;

/// Minimum `m·n·k` volume before worker threads are requested. Integer
/// accumulation is exact, so the partition never affects results.
const PARALLEL_MIN_VOLUME: usize = 1 << 21;

/// The shared quantization step: symmetric round-to-nearest, clamped to
/// the symmetric int8 range. `scale == 0` (an all-zero vector) maps
/// everything to 0.
#[inline]
pub fn quantize_value(v: f32, scale: f32) -> i32 {
    if scale == 0.0 {
        0
    } else {
        ((v / scale).round() as i32).clamp(-127, 127)
    }
}

/// Symmetric scale for a slice: `maxabs / 127`, or 0 for all-zero input.
#[inline]
pub fn symmetric_scale(vals: impl Iterator<Item = f32>) -> f32 {
    let maxabs = vals.fold(0.0f32, |m, v| m.max(v.abs()));
    if maxabs > 0.0 {
        maxabs / 127.0
    } else {
        0.0
    }
}

/// A frozen weight matrix quantized to int8 and packed for the VNNI
/// microkernel. Logical shape is `(k, n)` (input dim × output dim),
/// matching the row-major layout of `Linear::weight`.
#[derive(Debug, Clone)]
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    /// `k` rounded up to a multiple of [`KG`]; padded positions hold
    /// weight 0, so arbitrary activation bytes there contribute nothing.
    kp: usize,
    /// Panel-packed int8 weights:
    /// `packed[u·kp·NR + g·NR·KG + j·KG + s] = qw[g·KG + s][u·NR + j]`
    /// — panel `u`, k-group `g`, panel column `j`, byte `s` within the
    /// group. One k-group of one panel is `NR·KG = 128` contiguous bytes.
    packed: Vec<i8>,
    /// Per-output-column symmetric scales (`len == n`).
    scales: Vec<f32>,
    /// Per-output-column `Σ_p qw[p][j]`, used to remove the +128
    /// activation offset exactly.
    col_sums: Vec<i32>,
}

impl QuantizedMatrix {
    /// Quantizes a `(k, n)` row-major weight matrix.
    pub fn quantize(k: usize, n: usize, w: &[f32]) -> Self {
        assert_eq!(w.len(), k * n, "weight shape mismatch");
        debug_assert!(k <= MAX_K, "reduction depth {k} exceeds overflow bound");
        let kp = k.div_ceil(KG).max(1) * KG;
        let npanels = n.div_ceil(NR);
        let mut scales = Vec::with_capacity(n);
        for j in 0..n {
            scales.push(symmetric_scale((0..k).map(|p| w[p * n + j])));
        }
        let mut packed = vec![0i8; npanels * kp * NR];
        let mut col_sums = vec![0i32; n];
        for p in 0..k {
            let (g, s) = (p / KG, p % KG);
            for j in 0..n {
                let q = quantize_value(w[p * n + j], scales[j]);
                col_sums[j] += q;
                let (u, jj) = (j / NR, j % NR);
                packed[u * kp * NR + g * NR * KG + jj * KG + s] = q as i8;
            }
        }
        QuantizedMatrix {
            k,
            n,
            kp,
            packed,
            scales,
            col_sums,
        }
    }

    /// Quantizes a weight tensor (rows = input dim, cols = output dim).
    pub fn from_tensor(w: &Tensor) -> Self {
        Self::quantize(w.rows(), w.cols(), w.data())
    }

    /// Input dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `k` rounded up to the VNNI group size — the row stride
    /// [`QuantizedActivations`] must be built with to feed this matrix.
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// `x @ W` for a `(m, k)` activation tensor → `(m, n)`.
    pub fn matmul(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.k, "qgemm dimension mismatch");
        // qgemm overwrites every output element, so skip the zero fill.
        let mut out = Tensor::uninit(x.rows(), self.n);
        qgemm(x.rows(), x.data(), self, out.data_mut());
        out
    }

    /// [`Self::matmul`] with the bias row folded into the dequantize
    /// epilogue: `out = sx·sw·acc + bias[j]`, the same multiply-then-add
    /// sequence as a separate broadcast pass, so results are bitwise
    /// identical while the output is only traversed once.
    pub fn matmul_bias(&self, x: &Tensor, bias: &[f32]) -> Tensor {
        assert_eq!(x.cols(), self.k, "qgemm dimension mismatch");
        assert_eq!(bias.len(), self.n, "bias shape mismatch");
        let mut out = Tensor::uninit(x.rows(), self.n);
        let qa = quantize_activations(x.rows(), self.k, self.kp, x.data());
        qgemm_prequant_bias(&qa, self, Some(bias), out.data_mut());
        out
    }

    /// `x @ W` for activations quantized once via
    /// [`QuantizedActivations::quantize`] and shared across several
    /// matrices of the same input dimension (e.g. attention Q/K/V).
    /// Bitwise identical to [`Self::matmul`]: the per-row scale depends
    /// only on the activations.
    pub fn matmul_prequant(&self, qa: &QuantizedActivations) -> Tensor {
        let mut out = Tensor::uninit(qa.m, self.n);
        qgemm_prequant(qa, self, out.data_mut());
        out
    }

    /// [`Self::matmul_prequant`] with the fused bias epilogue of
    /// [`Self::matmul_bias`].
    pub fn matmul_prequant_bias(&self, qa: &QuantizedActivations, bias: &[f32]) -> Tensor {
        assert_eq!(bias.len(), self.n, "bias shape mismatch");
        let mut out = Tensor::uninit(qa.m, self.n);
        qgemm_prequant_bias(qa, self, Some(bias), out.data_mut());
        out
    }
}

/// Per-row symmetrically quantized activations: per-row scales plus the
/// offset-by-128 `u8` buffer, row-major with `k` padded to `kp`. Built
/// once per input tensor and reusable against every [`QuantizedMatrix`]
/// with the same `(k, kp)` — quantization depends only on the
/// activations, so sharing is bitwise invisible.
pub struct QuantizedActivations {
    m: usize,
    k: usize,
    kp: usize,
    rows: Vec<u8>,
    scales: Vec<f32>,
}

impl QuantizedActivations {
    /// Quantizes a `(m, k)` activation tensor with row stride `kp`
    /// (take it from [`QuantizedMatrix::kp`]).
    pub fn quantize(x: &Tensor, kp: usize) -> Self {
        quantize_activations(x.rows(), x.cols(), kp, x.data())
    }
}

fn quantize_activations(m: usize, k: usize, kp: usize, x: &[f32]) -> QuantizedActivations {
    debug_assert!(kp >= k && kp % KG == 0, "bad activation row stride");
    let mut rows = vec![128u8; m * kp];
    let mut scales = Vec::with_capacity(m);
    for i in 0..m {
        let src = &x[i * k..(i + 1) * k];
        let scale = if src.is_empty() {
            0.0
        } else {
            let maxabs = kernels::maxabs(src);
            if maxabs > 0.0 {
                maxabs / 127.0
            } else {
                0.0
            }
        };
        scales.push(scale);
        if scale != 0.0 {
            kernels::quantize_row(src, scale, &mut rows[i * kp..i * kp + k]);
        }
        // `scale == 0` rows (and the padded tail) stay 128 (quantized 0);
        // padded weights are 0, so the pair contributes 128·0 to the
        // accumulator and the offset correction uses col_sums over the
        // same zero-padded weights.
    }
    QuantizedActivations {
        m,
        k,
        kp,
        rows,
        scales,
    }
}

/// `out = x @ W` with `x` a `(m, k)` row-major `f32` buffer and `W` a
/// pre-quantized `(k, n)` matrix; `out` is `(m, n)` and fully overwritten.
///
/// Row bands fan out over the shared [`crate::threadpool`] budget; the
/// i32 accumulation is exact, so every partition and both kernels
/// (VNNI and portable) produce identical results.
pub fn qgemm(m: usize, x: &[f32], w: &QuantizedMatrix, out: &mut [f32]) {
    debug_assert_eq!(x.len(), m * w.k, "activation shape mismatch");
    if m == 0 || w.n == 0 {
        return;
    }
    let qa = quantize_activations(m, w.k, w.kp, x);
    qgemm_prequant(&qa, w, out);
}

/// [`qgemm`] over activations quantized up front — the shared-activation
/// entry point behind [`QuantizedMatrix::matmul_prequant`].
pub fn qgemm_prequant(qa: &QuantizedActivations, w: &QuantizedMatrix, out: &mut [f32]) {
    qgemm_prequant_bias(qa, w, None, out);
}

/// [`qgemm_prequant`] with an optional bias row added in the dequantize
/// epilogue (multiply-then-add, bitwise equal to a separate bias pass).
fn qgemm_prequant_bias(
    qa: &QuantizedActivations,
    w: &QuantizedMatrix,
    bias: Option<&[f32]>,
    out: &mut [f32],
) {
    assert_eq!(qa.k, w.k, "qgemm dimension mismatch");
    assert_eq!(qa.kp, w.kp, "activation row stride mismatch");
    debug_assert_eq!(out.len(), qa.m * w.n, "output shape mismatch");
    let m = qa.m;
    if m == 0 || w.n == 0 {
        return;
    }
    let volume = m.saturating_mul(w.n).saturating_mul(w.k.max(1));
    if em_obs::capture_enabled() {
        let metrics = qgemm_metrics();
        metrics.calls.inc();
        // One multiply + one add per (i, j, p) triple, as `gemm.flops`
        // counts them; the int8 ops retire 4 MACs per instruction but the
        // counter prices logical work, not instructions.
        metrics.flops.add(2 * volume as u64);
    }

    let nstrips = m.div_ceil(MR);
    let reservation = if volume >= PARALLEL_MIN_VOLUME && nstrips > 1 {
        threadpool::reserve_workers(nstrips - 1)
    } else {
        threadpool::reserve_workers(0)
    };
    let nworkers = reservation.total().min(nstrips).max(1);
    if nworkers <= 1 {
        process_band(0, m, w, qa, bias, out);
        return;
    }
    let base = nstrips / nworkers;
    let rem = nstrips % nworkers;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut strip0 = 0usize;
        for t in 0..nworkers {
            let strips_here = base + usize::from(t < rem);
            let row0 = strip0 * MR;
            let rows_here = ((strip0 + strips_here) * MR).min(m) - row0;
            let (band, tail) = rest.split_at_mut(rows_here * w.n);
            rest = tail;
            let (w, qa) = (&*w, qa);
            let mut run = move || process_band(row0, rows_here, w, qa, bias, band);
            if t + 1 == nworkers {
                run();
            } else {
                scope.spawn(run);
            }
            strip0 += strips_here;
        }
    });
}

/// Computes `rows` output rows starting at global row `row0` into `band`.
fn process_band(
    row0: usize,
    rows: usize,
    w: &QuantizedMatrix,
    qa: &QuantizedActivations,
    bias: Option<&[f32]>,
    band: &mut [f32],
) {
    let n = w.n;
    let npanels = n.div_ceil(NR);
    let mut acc = [[0i32; NR]; MR];
    let mut r = 0usize;
    while r < rows {
        let mr_eff = MR.min(rows - r);
        let arows = &qa.rows[(row0 + r) * qa.kp..(row0 + r + mr_eff) * qa.kp];
        for u in 0..npanels {
            let panel = &w.packed[u * w.kp * NR..(u + 1) * w.kp * NR];
            kernels::microkernel(arows, panel, qa.kp, mr_eff, &mut acc);
            let j0 = u * NR;
            let nr_eff = NR.min(n - j0);
            for (ii, accrow) in acc.iter().enumerate().take(mr_eff) {
                let sx = qa.scales[row0 + r + ii];
                let dst = &mut band[(r + ii) * n + j0..(r + ii) * n + j0 + nr_eff];
                match bias {
                    Some(bias) => {
                        for jj in 0..nr_eff {
                            let corrected = accrow[jj] - 128 * w.col_sums[j0 + jj];
                            // Same multiply-then-add sequence as a
                            // separate bias broadcast (no FMA), so the
                            // fused epilogue is bitwise identical.
                            dst[jj] = sx * w.scales[j0 + jj] * corrected as f32 + bias[j0 + jj];
                        }
                    }
                    None => {
                        for jj in 0..nr_eff {
                            // Remove the +128 activation offset exactly,
                            // then rescale:
                            // out = sx · sw · (acc − 128 · Σ qw).
                            let corrected = accrow[jj] - 128 * w.col_sums[j0 + jj];
                            dst[jj] = sx * w.scales[j0 + jj] * corrected as f32;
                        }
                    }
                }
            }
        }
        r += MR;
    }
}

// ---------------------------------------------------------------------
// Microkernels.
//
// `acc[i][j] = Σ_p qx(row i, p) · qw(p, panel col j)` over the padded
// reduction `p = 0..kp`, as exact i32 sums. `arows` holds `mr_eff`
// consecutive activation rows of `kp` u8 each; `panel` is one packed
// weight panel (`kp · NR` i8, in KG-groups). Rows past `mr_eff` keep
// whatever the accumulator held — callers only read the first `mr_eff`.
// Integer accumulation is order-independent, so the VNNI and portable
// implementations agree exactly.
// ---------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_feature = "avx512vnni"))]
mod kernels {
    use super::{KG, MR, NR};
    use std::arch::x86_64::*;

    /// Order-independent `max |v|` (f32 max over distinct finite values is
    /// associative and commutative, and `|−0| = +0`), so the 16-lane
    /// reduction equals [`super::symmetric_scale`]'s left fold exactly.
    #[inline]
    pub fn maxabs(src: &[f32]) -> f32 {
        unsafe {
            let absmask = _mm512_castsi512_ps(_mm512_set1_epi32(0x7fff_ffff));
            let mut acc = _mm512_setzero_ps();
            let mut i = 0usize;
            while i + 16 <= src.len() {
                let v = _mm512_loadu_ps(src.as_ptr().add(i));
                acc = _mm512_max_ps(acc, _mm512_and_ps(v, absmask));
                i += 16;
            }
            if i < src.len() {
                let mask = (1u16 << (src.len() - i)) - 1;
                let v = _mm512_maskz_loadu_ps(mask, src.as_ptr().add(i));
                acc = _mm512_max_ps(acc, _mm512_and_ps(v, absmask));
            }
            _mm512_reduce_max_ps(acc)
        }
    }

    /// 16 activations → 16 offset-by-128 `u8`, matching
    /// `(quantize_value(v, scale) + 128) as u8` bit for bit on every
    /// finite input:
    /// * `vdivps` is the same IEEE division;
    /// * `trunc(d + copysign(C, d))` with `C = 0.49999997` (the largest
    ///   f32 below 0.5) is the standard exact expansion of
    ///   round-half-away-from-zero under round-nearest-even — the only
    ///   inexact sums land on exact ties whose even neighbor *is* the
    ///   away-from-zero integer;
    /// * clamping in the float domain before `vcvttps2dq` gives the same
    ///   [-127, 127] saturation the scalar `clamp` applies (and keeps
    ///   ±∞ consistent, which the trunc conversion alone would not).
    #[inline]
    unsafe fn quantize16(v: __m512, vscale: __m512) -> __m128i {
        let sign = _mm512_set1_ps(-0.0);
        let c = _mm512_set1_ps(f32::from_bits(0x3EFF_FFFF));
        let d = _mm512_div_ps(v, vscale);
        let magic = _mm512_or_ps(_mm512_and_ps(d, sign), c);
        let r = _mm512_roundscale_ps::<{ _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC }>(
            _mm512_add_ps(d, magic),
        );
        let rc = _mm512_max_ps(_mm512_min_ps(r, _mm512_set1_ps(127.0)), _mm512_set1_ps(-127.0));
        let q = _mm512_cvttps_epi32(rc);
        _mm512_cvtepi32_epi8(_mm512_add_epi32(q, _mm512_set1_epi32(128)))
    }

    /// Quantizes one activation row (`scale > 0`) into offset-`u8` bytes.
    #[inline]
    pub fn quantize_row(src: &[f32], scale: f32, dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert!(scale > 0.0);
        unsafe {
            let vscale = _mm512_set1_ps(scale);
            let mut i = 0usize;
            while i + 16 <= src.len() {
                let v = _mm512_loadu_ps(src.as_ptr().add(i));
                let b = quantize16(v, vscale);
                _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, b);
                i += 16;
            }
            if i < src.len() {
                let mask = (1u16 << (src.len() - i)) - 1;
                // Inactive lanes load 0.0, quantize to the 128 offset
                // byte, and are dropped by the masked store anyway.
                let v = _mm512_maskz_loadu_ps(mask, src.as_ptr().add(i));
                let b = quantize16(v, vscale);
                _mm_mask_storeu_epi8(dst.as_mut_ptr().add(i) as *mut i8, mask, b);
            }
        }
    }

    /// An 8×32 i32 tile is 16 zmm accumulators + 2 weight vectors + 1
    /// broadcast, within the 32 architectural zmm registers. Each
    /// `vpdpbusd` retires `KG` MACs per lane (64 per instruction).
    #[inline]
    pub fn microkernel(arows: &[u8], panel: &[i8], kp: usize, mr_eff: usize, acc: &mut [[i32; NR]; MR]) {
        debug_assert_eq!(arows.len(), mr_eff * kp);
        debug_assert_eq!(panel.len(), kp * NR);
        unsafe {
            let mut c: [[__m512i; 2]; MR] = [[_mm512_setzero_si512(); 2]; MR];
            let mut wptr = panel.as_ptr();
            for g in 0..kp / KG {
                // One k-group: NR columns × KG bytes = two zmm loads.
                let w0 = _mm512_loadu_si512(wptr as *const __m512i);
                let w1 = _mm512_loadu_si512(wptr.add(64) as *const __m512i);
                for (i, ci) in c.iter_mut().enumerate().take(mr_eff) {
                    // Broadcast this row's KG activation bytes to every
                    // 32-bit lane; vpdpbusd pairs them with each column's
                    // KG weight bytes.
                    let abytes =
                        (arows.as_ptr().add(i * kp + g * KG) as *const i32).read_unaligned();
                    let av = _mm512_set1_epi32(abytes);
                    ci[0] = _mm512_dpbusd_epi32(ci[0], av, w0);
                    ci[1] = _mm512_dpbusd_epi32(ci[1], av, w1);
                }
                wptr = wptr.add(NR * KG);
            }
            for (accrow, ci) in acc.iter_mut().zip(&c).take(mr_eff) {
                _mm512_storeu_si512(accrow.as_mut_ptr() as *mut __m512i, ci[0]);
                _mm512_storeu_si512(accrow.as_mut_ptr().add(16) as *mut __m512i, ci[1]);
            }
        }
    }
}

/// Portable fallback: plain nested i32 loops over the same packed layout.
/// Integer sums are exact, so this is bit-for-bit the VNNI result.
#[cfg(not(all(target_arch = "x86_64", target_feature = "avx512vnni")))]
mod kernels {
    use super::{KG, MR, NR};

    #[inline]
    pub fn maxabs(src: &[f32]) -> f32 {
        src.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    #[inline]
    pub fn quantize_row(src: &[f32], scale: f32, dst: &mut [u8]) {
        debug_assert_eq!(src.len(), dst.len());
        debug_assert!(scale > 0.0);
        for (d, &v) in dst.iter_mut().zip(src) {
            *d = (super::quantize_value(v, scale) + 128) as u8;
        }
    }

    #[inline]
    pub fn microkernel(arows: &[u8], panel: &[i8], kp: usize, mr_eff: usize, acc: &mut [[i32; NR]; MR]) {
        debug_assert_eq!(arows.len(), mr_eff * kp);
        debug_assert_eq!(panel.len(), kp * NR);
        for accrow in acc.iter_mut().take(mr_eff) {
            accrow.iter_mut().for_each(|v| *v = 0);
        }
        for g in 0..kp / KG {
            let wgroup = &panel[g * NR * KG..(g + 1) * NR * KG];
            for (i, accrow) in acc.iter_mut().enumerate().take(mr_eff) {
                let abytes = &arows[i * kp + g * KG..i * kp + g * KG + KG];
                for (j, cv) in accrow.iter_mut().enumerate() {
                    let wb = &wgroup[j * KG..(j + 1) * KG];
                    for s in 0..KG {
                        *cv += abytes[s] as i32 * wb[s] as i32;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 4.0
            })
            .collect()
    }

    #[test]
    fn matches_reference_oracle_bitwise_on_awkward_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 4, 32),
            (9, 17, 33),
            (13, 2, 31),
            (20, 64, 48),
        ] {
            let w = fill(k * n, 1);
            let x = fill(m * k, 2);
            let qm = QuantizedMatrix::quantize(k, n, &w);
            let mut fast = vec![0.0f32; m * n];
            qgemm(m, &x, &qm, &mut fast);
            let mut slow = vec![0.0f32; m * n];
            reference::qgemm(m, k, n, &x, &w, &mut slow);
            assert!(
                fast.iter().zip(&slow).all(|(a, b)| a.to_bits() == b.to_bits()),
                "mismatch at ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn approximates_the_f32_product() {
        let (m, k, n) = (6, 24, 16);
        let w = fill(k * n, 3);
        let x = fill(m * k, 4);
        let qm = QuantizedMatrix::quantize(k, n, &w);
        let mut quant = vec![0.0f32; m * n];
        qgemm(m, &x, &qm, &mut quant);
        let mut exact = vec![0.0f32; m * n];
        reference::matmul(m, k, n, &x, &w, &mut exact);
        for (q, e) in quant.iter().zip(&exact) {
            // Two ~0.8% operand errors over a k=24 reduction of O(1)
            // values: comfortably inside 0.2 absolute.
            assert!((q - e).abs() < 0.2, "{q} vs {e}");
        }
    }

    #[test]
    fn zero_inputs_quantize_to_exact_zero() {
        let qm = QuantizedMatrix::quantize(4, 3, &[0.0; 12]);
        let mut out = vec![1.0f32; 6];
        qgemm(2, &fill(8, 5), &qm, &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "zero weights must yield zero");
        let qm = QuantizedMatrix::quantize(4, 3, &fill(12, 6));
        qgemm(2, &[0.0; 8], &qm, &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "zero activations must yield zero");
    }

    #[test]
    fn tensor_entry_point_matches_flat_entry_point() {
        let (m, k, n) = (5, 10, 12);
        let w = Tensor::from_vec(k, n, fill(k * n, 7));
        let x = Tensor::from_vec(m, k, fill(m * k, 8));
        let qm = QuantizedMatrix::from_tensor(&w);
        let via_tensor = qm.matmul(&x);
        let mut via_flat = vec![0.0f32; m * n];
        qgemm(m, x.data(), &qm, &mut via_flat);
        assert_eq!(via_tensor.data(), &via_flat[..]);
    }

    // Thread-count parity is covered in `tests/qgemm_equivalence.rs`,
    // which owns the process-global thread-cap override.
}
