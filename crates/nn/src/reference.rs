//! Naive reference GEMM kernels.
//!
//! These are the original straight-line loops the [`crate::gemm`] kernels
//! replaced. They are kept as executable ground truth: the blocked kernels
//! must produce **bitwise identical** output (both accumulate each output
//! element's products serially in `p = 0..k` order with separate multiply
//! and add, which Rust never contracts into FMA), and the property tests
//! in `tests/gemm_equivalence.rs` assert exact equality against them.
//!
//! Compared to the seed implementation, the `if a == 0.0 { continue; }`
//! shortcut has been removed from the inner loops: it made throughput
//! data-dependent, broke IEEE semantics for non-finite operands
//! (`0.0 * inf` must be NaN, not skipped), and the branch was mispredicted
//! on dense data, which these kernels always see. The accumulation step is
//! [`f32::mul_add`] — a *fused* multiply-add with a single IEEE-specified
//! rounding, so it is exactly reproducible on every platform and matches
//! the FMA instructions the blocked microkernel issues.

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// ikj loop order: the inner loop streams contiguous memory on `B` and `C`.
pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

/// `C = Aᵀ·B` for row-major `A (k×m)`, `B (k×n)`, `C (m×n)`, without
/// materializing the transpose.
pub fn t_matmul(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

/// `C = A·Bᵀ` for row-major `A (m×k)`, `B (n×k)`, `C (m×n)`, without
/// materializing the transpose.
pub fn matmul_t(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc = av.mul_add(bv, acc);
            }
            *cv = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_computed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn zero_times_infinity_is_nan_not_skipped() {
        // The seed kernels skipped a == 0.0 rows entirely; IEEE requires
        // the product to propagate NaN.
        let a = [0.0f32, 1.0];
        let b = [f32::INFINITY, 2.0, 3.0, 4.0];
        let mut c = [0.0f32; 2];
        matmul(1, 2, 2, &a, &b, &mut c);
        assert!(c[0].is_nan(), "0·inf + 1·3 must be NaN, got {}", c[0]);
        assert_eq!(c[1], 4.0);
    }
}
