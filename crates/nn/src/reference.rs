//! Naive reference GEMM kernels.
//!
//! These are the original straight-line loops the [`crate::gemm`] kernels
//! replaced. They are kept as executable ground truth: the blocked kernels
//! must produce **bitwise identical** output (both accumulate each output
//! element's products serially in `p = 0..k` order with separate multiply
//! and add, which Rust never contracts into FMA), and the property tests
//! in `tests/gemm_equivalence.rs` assert exact equality against them.
//!
//! Compared to the seed implementation, the `if a == 0.0 { continue; }`
//! shortcut has been removed from the inner loops: it made throughput
//! data-dependent, broke IEEE semantics for non-finite operands
//! (`0.0 * inf` must be NaN, not skipped), and the branch was mispredicted
//! on dense data, which these kernels always see. The accumulation step is
//! [`f32::mul_add`] — a *fused* multiply-add with a single IEEE-specified
//! rounding, so it is exactly reproducible on every platform and matches
//! the FMA instructions the blocked microkernel issues.

/// `C = A·B` for row-major `A (m×k)`, `B (k×n)`, `C (m×n)`.
///
/// ikj loop order: the inner loop streams contiguous memory on `B` and `C`.
pub fn matmul(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

/// `C = Aᵀ·B` for row-major `A (k×m)`, `B (k×n)`, `C (m×n)`, without
/// materializing the transpose.
pub fn t_matmul(k: usize, m: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv = av.mul_add(bv, *cv);
            }
        }
    }
}

/// `C = A·Bᵀ` for row-major `A (m×k)`, `B (n×k)`, `C (m×n)`, without
/// materializing the transpose.
pub fn matmul_t(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc = av.mul_add(bv, acc);
            }
            *cv = acc;
        }
    }
}

/// Naive single-threaded masked multi-head attention: the equivalence
/// oracle for the fused kernel in [`crate::attention`].
///
/// `q`/`k`/`v` are interleaved `(batch·seq, heads·head_dim)` row-major
/// buffers (the post-projection layout), `mask` has one entry per token
/// row (`true` = real token), and `out` receives the concatenated head
/// outputs in the same interleaved layout. Every product accumulates
/// serially with [`f32::mul_add`] and the scale + masked softmax follows
/// the same operation order as the fused kernel, so the two agree
/// **bitwise** — the property suite still only asserts ≤1e-5 to keep the
/// contract honest under future kernel changes.
///
/// Padded *keys* get zero attention; a fully masked row yields an all-zero
/// distribution (and thus zero output). Padded *query* rows still attend
/// over the valid keys — their outputs are discarded by masked pooling
/// upstream.
#[allow(clippy::too_many_arguments)]
pub fn attention(
    batch: usize,
    seq: usize,
    heads: usize,
    head_dim: usize,
    q: &[f32],
    k: &[f32],
    v: &[f32],
    mask: &[bool],
    out: &mut [f32],
) {
    let dim = heads * head_dim;
    debug_assert_eq!(q.len(), batch * seq * dim);
    debug_assert_eq!(k.len(), q.len());
    debug_assert_eq!(v.len(), q.len());
    debug_assert_eq!(mask.len(), batch * seq);
    debug_assert_eq!(out.len(), q.len());
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut row = vec![0.0f32; seq];
    for b in 0..batch {
        let bmask = &mask[b * seq..(b + 1) * seq];
        for h in 0..heads {
            let col0 = h * head_dim;
            for t in 0..seq {
                let qrow = &q[((b * seq + t) * dim + col0)..((b * seq + t) * dim + col0 + head_dim)];
                // Scores for query t against every key j, then the fused
                // scale + masked softmax sequence.
                for (j, s) in row.iter_mut().enumerate() {
                    let krow =
                        &k[((b * seq + j) * dim + col0)..((b * seq + j) * dim + col0 + head_dim)];
                    let mut acc = 0.0f32;
                    for (&qv, &kv) in qrow.iter().zip(krow) {
                        acc = qv.mul_add(kv, acc);
                    }
                    *s = acc;
                }
                let mut m = f32::NEG_INFINITY;
                for (s, &keep) in row.iter_mut().zip(bmask) {
                    *s *= scale;
                    if keep && *s > m {
                        m = *s;
                    }
                }
                if !m.is_finite() {
                    row.iter_mut().for_each(|s| *s = 0.0);
                } else {
                    let mut sum = 0.0;
                    for (s, &keep) in row.iter_mut().zip(bmask) {
                        if keep {
                            *s = (*s - m).exp();
                            sum += *s;
                        } else {
                            *s = 0.0;
                        }
                    }
                    if sum > 0.0 {
                        row.iter_mut().for_each(|s| *s /= sum);
                    }
                }
                // Context: out[t] = Σ_j P[t][j] · V[j], accumulated in
                // j order (the same serial reduction order as P·V through
                // the GEMM).
                let orow = &mut out
                    [((b * seq + t) * dim + col0)..((b * seq + t) * dim + col0 + head_dim)];
                orow.iter_mut().for_each(|o| *o = 0.0);
                for (j, &p) in row.iter().enumerate() {
                    let vrow =
                        &v[((b * seq + j) * dim + col0)..((b * seq + j) * dim + col0 + head_dim)];
                    for (o, &vv) in orow.iter_mut().zip(vrow) {
                        *o = p.mul_add(vv, *o);
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized-GEMM oracle
// ---------------------------------------------------------------------------

/// Naive int8 quantized matmul: the equivalence oracle for
/// [`crate::qgemm`].
///
/// Quantizes `w (k×n)` per output column and `x (m×k)` per row with the
/// same symmetric round-to-nearest scheme as the packed path
/// ([`crate::qgemm::symmetric_scale`] / [`crate::qgemm::quantize_value`]),
/// accumulates in `i32` with a plain triple loop, and dequantizes as
/// `sx[i] · sw[j] · acc`. Integer sums are exact (order-independent), and
/// the dequant expression performs the identical two `f32`
/// multiplications, so the packed/vectorized path must match **bitwise**
/// — `tests/qgemm_equivalence.rs` asserts exact equality. The packed path
/// offsets activations by +128 and subtracts `128 · Σ_p qw[p][j]`
/// afterwards; that correction is exact in `i32`, so it cancels here.
pub fn qgemm(m: usize, k: usize, n: usize, x: &[f32], w: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), m * k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let mut wscales = Vec::with_capacity(n);
    for j in 0..n {
        wscales.push(crate::qgemm::symmetric_scale((0..k).map(|p| w[p * n + j])));
    }
    let mut qw = vec![0i32; k * n];
    for p in 0..k {
        for j in 0..n {
            qw[p * n + j] = crate::qgemm::quantize_value(w[p * n + j], wscales[j]);
        }
    }
    for i in 0..m {
        let xrow = &x[i * k..(i + 1) * k];
        let sx = crate::qgemm::symmetric_scale(xrow.iter().copied());
        let qx: Vec<i32> = xrow.iter().map(|&v| crate::qgemm::quantize_value(v, sx)).collect();
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += qx[p] * qw[p * n + j];
            }
            out[i * n + j] = sx * wscales[j] * acc as f32;
        }
    }
}

// ---------------------------------------------------------------------------
// Fused-optimizer oracles
// ---------------------------------------------------------------------------

/// Naive single-threaded global gradient norm with the fixed-order block
/// reduction of the fused optimizers: per-block serial [`f32::mul_add`]
/// sums of `g²`, block sums accumulated in (parameter, block) order. The
/// block size is part of the numeric contract — the fused path computes
/// block sums concurrently but reduces them in this exact order, so the
/// two agree **bitwise** at every thread count
/// (`crate::optim::FUSED_BLOCK` is what the fused optimizers pass here).
pub fn grad_norm(grads: &[&[f32]], block: usize) -> f32 {
    let block = block.max(1);
    let mut total = 0.0f32;
    for g in grads {
        for chunk in g.chunks(block) {
            let mut acc = 0.0f32;
            for &x in chunk {
                acc = x.mul_add(x, acc);
            }
            total += acc;
        }
    }
    total.sqrt()
}

/// Clip factor applied to every gradient read: identity unless the norm
/// exceeds `max_norm` (mirrors [`crate::optim::clip_grad_norm`]'s trigger
/// condition).
pub fn clip_scale(norm: f32, max_norm: f32) -> f32 {
    if norm > max_norm && norm > 0.0 {
        max_norm / norm
    } else {
        1.0
    }
}

/// Naive single-threaded fused AdamW update for one parameter: clip-scaled
/// gradient read → moment update → bias-corrected step → decoupled weight
/// decay → gradient zeroing, element by element. The equivalence oracle
/// for [`crate::optim::FusedAdam`]; the fused path must match bitwise.
#[allow(clippy::too_many_arguments)]
pub fn adam_update(
    value: &mut [f32],
    grad: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    scale: f32,
    bc1: f32,
    bc2: f32,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
) {
    for i in 0..value.len() {
        let g = grad[i] * scale;
        m[i] = beta1 * m[i] + (1.0 - beta1) * g;
        v[i] = beta2 * v[i] + (1.0 - beta2) * g * g;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        let mut upd = lr * mhat / (vhat.sqrt() + eps);
        if weight_decay > 0.0 {
            upd += lr * weight_decay * value[i];
        }
        value[i] -= upd;
        grad[i] = 0.0;
    }
}

/// Naive single-threaded fused momentum-SGD update for one parameter: the
/// equivalence oracle for [`crate::optim::FusedSgd`].
pub fn sgd_update(
    value: &mut [f32],
    grad: &mut [f32],
    vel: &mut [f32],
    scale: f32,
    lr: f32,
    momentum: f32,
) {
    for i in 0..value.len() {
        let g = grad[i] * scale;
        vel[i] = momentum * vel[i] + g;
        value[i] -= lr * vel[i];
        grad[i] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_hand_computed() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0f32; 4];
        matmul(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn zero_times_infinity_is_nan_not_skipped() {
        // The seed kernels skipped a == 0.0 rows entirely; IEEE requires
        // the product to propagate NaN.
        let a = [0.0f32, 1.0];
        let b = [f32::INFINITY, 2.0, 3.0, 4.0];
        let mut c = [0.0f32; 2];
        matmul(1, 2, 2, &a, &b, &mut c);
        assert!(c[0].is_nan(), "0·inf + 1·3 must be NaN, got {}", c[0]);
        assert_eq!(c[1], 4.0);
    }
}
