//! A minimal 2-D row-major `f32` tensor with exactly the operations the
//! transformer substrate needs. Shapes are checked with assertions; all
//! inner loops run over contiguous slices so the compiler can vectorize.

/// Dense row-major 2-D tensor of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero tensor of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if the buffer does not match the shape.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Tensor { rows, cols, data }
    }

    /// Allocates the shape without zero-filling. Strictly for kernels that
    /// overwrite every element before any read (the qgemm output path);
    /// callers that might leave gaps must use [`Self::zeros`]. Skipping
    /// the memset matters because inference allocates a fresh output per
    /// Linear call on the serve hot path.
    pub fn uninit(rows: usize, cols: usize) -> Self {
        let len = rows * cols;
        let mut data = Vec::with_capacity(len);
        // SAFETY: f32 has no invalid bit patterns, and the contract above
        // requires every element to be overwritten before it is read.
        #[allow(clippy::uninit_vec)]
        unsafe {
            data.set_len(len);
        }
        Tensor { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat data access.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data access.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// Fills with zeros in place.
    pub fn zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// `self @ other` — (m,k) × (k,n) → (m,n).
    ///
    /// Routed through the cache-blocked kernel in [`crate::gemm`]; results
    /// are bitwise identical to the naive loop in [`crate::reference`] at
    /// every thread count.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        crate::gemm::gemm(m, k, n, &self.data, false, &other.data, false, &mut out.data);
        out
    }

    /// `self^T @ other` — (k,m)ᵀ × (k,n) → (m,n), without materializing the
    /// transpose (used for weight gradients `Xᵀ·dY`). The transpose is
    /// absorbed by the GEMM packing stage.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        crate::gemm::gemm(m, k, n, &self.data, true, &other.data, false, &mut out.data);
        out
    }

    /// `self @ other^T` — (m,k) × (n,k)ᵀ → (m,n), without materializing the
    /// transpose (used for input gradients `dY·Wᵀ` and attention scores).
    /// The transpose is absorbed by the GEMM packing stage.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        crate::gemm::gemm(m, k, n, &self.data, false, &other.data, true, &mut out.data);
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add_assign shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// Adds a row vector to every row (broadcast bias add).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for i in 0..self.rows {
            for (v, &b) in self.row_mut(i).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Sum over rows → vector of length `cols` (bias gradient).
    pub fn sum_rows(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(i)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Dot product over `f32` slices.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Softmax over a mutable slice, in place, numerically stable.
pub fn softmax_inplace(xs: &mut [f32]) {
    let m = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - m).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn matmul_hand_computed() {
        let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(3, 4, (0..12).map(|i| i as f32).collect());
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(4, 3, (0..12).map(|i| i as f32).collect());
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        assert_eq!(fast, slow);
    }

    #[test]
    fn broadcast_bias_and_sum_rows_are_adjoint() {
        let mut x = Tensor::zeros(3, 2);
        x.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(x.sum_rows(), vec![3.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut xs = vec![1.0, 2.0, 3.0];
        softmax_inplace(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let mut xs = vec![1000.0, 1000.0];
        softmax_inplace(&mut xs);
        assert!((xs[0] - 0.5).abs() < 1e-6);
        assert!(xs.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scale_and_add_assign() {
        let mut a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        a.scale(2.0);
        let b = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    proptest! {
        #[test]
        fn transpose_is_involution(
            rows in 1usize..5, cols in 1usize..5,
            seed in proptest::collection::vec(-2.0f32..2.0, 25)
        ) {
            let data: Vec<f32> = seed.into_iter().cycle().take(rows * cols).collect();
            let t = Tensor::from_vec(rows, cols, data);
            prop_assert_eq!(t.transpose().transpose(), t);
        }

        #[test]
        fn matmul_distributes_over_add(
            a in proptest::collection::vec(-2.0f32..2.0, 4),
            b in proptest::collection::vec(-2.0f32..2.0, 4),
            c in proptest::collection::vec(-2.0f32..2.0, 4)
        ) {
            let ta = Tensor::from_vec(2, 2, a);
            let tb = Tensor::from_vec(2, 2, b);
            let tc = Tensor::from_vec(2, 2, c);
            let mut sum = tb.clone();
            sum.add_assign(&tc);
            let left = ta.matmul(&sum);
            let mut right = ta.matmul(&tb);
            right.add_assign(&ta.matmul(&tc));
            for (x, y) in left.data().iter().zip(right.data()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }
    }
}
