//! Global worker-thread budget shared by every parallel region in the
//! workspace (GEMM row bands, LODO evaluation workers, batched LM scoring).
//!
//! The budget caps the number of OS threads doing compute at once, so
//! nested parallelism — e.g. a parallel GEMM inside an evaluation worker
//! that is itself one of N parallel workers — degrades gracefully to
//! sequential execution instead of oversubscribing the machine.
//!
//! The cap is `EM_NUM_THREADS` if set (and ≥ 1), otherwise
//! [`std::thread::available_parallelism`]. Tests can pin it with
//! [`set_max_threads`].
//!
//! Callers that want to fan out call [`reserve_workers`]; the returned
//! [`Reservation`] says how many *extra* threads (beyond the calling
//! thread) were granted, and returns them to the pool on drop. A grant of
//! zero means "run inline on the current thread" — always a correct
//! fallback because every parallel region in this workspace partitions
//! work without changing per-element results.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Test override for the thread cap; 0 means "unset".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Extra worker threads currently reserved across all parallel regions.
static EXTRA_IN_FLIGHT: AtomicUsize = AtomicUsize::new(0);

fn configured_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        if let Ok(s) = std::env::var("EM_NUM_THREADS") {
            if let Ok(v) = s.trim().parse::<usize>() {
                if v >= 1 {
                    return v;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The maximum number of compute threads (including the calling thread)
/// any cooperating parallel region may use.
pub fn max_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    if o != 0 {
        o
    } else {
        configured_cap()
    }
}

/// Pins (`Some(n)`, `n ≥ 1`) or restores (`None`) the thread cap.
/// Intended for tests that assert identical results across thread counts.
pub fn set_max_threads(n: Option<usize>) {
    OVERRIDE.store(n.unwrap_or(0).max(0), Ordering::Relaxed);
}

/// A claim on extra worker threads, returned by [`reserve_workers`].
/// Dropping it releases the claim.
#[derive(Debug)]
pub struct Reservation {
    granted: usize,
}

impl Reservation {
    /// Number of extra threads granted (0 = run inline).
    pub fn extra(&self) -> usize {
        self.granted
    }

    /// Total parallelism available to the caller: granted extras plus the
    /// calling thread itself.
    pub fn total(&self) -> usize {
        self.granted + 1
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        if self.granted > 0 {
            EXTRA_IN_FLIGHT.fetch_sub(self.granted, Ordering::Relaxed);
        }
    }
}

/// Claims up to `requested` extra worker threads from the shared budget.
///
/// The grant is `min(requested, cap - 1 - already_reserved)`, never
/// negative: the calling thread always counts against the cap, so with
/// `cap = 1` (or inside an already-saturated region) the grant is zero and
/// the caller runs sequentially.
pub fn reserve_workers(requested: usize) -> Reservation {
    if requested == 0 {
        return Reservation { granted: 0 };
    }
    let cap = max_threads();
    let mut cur = EXTRA_IN_FLIGHT.load(Ordering::Relaxed);
    loop {
        let avail = cap.saturating_sub(1 + cur);
        let grant = requested.min(avail);
        if grant == 0 {
            return Reservation { granted: 0 };
        }
        match EXTRA_IN_FLIGHT.compare_exchange_weak(
            cur,
            cur + grant,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                if em_obs::capture_enabled() {
                    let m = pool_metrics();
                    m.reservations.inc();
                    m.workers_granted.add(grant as u64);
                }
                return Reservation { granted: grant };
            }
            Err(observed) => cur = observed,
        }
    }
}

/// How the worker budget was derived, for diagnostics and benchmark
/// provenance (the `threads` block of `BENCH_*.json`).
#[derive(Debug, Clone)]
pub struct BudgetSnapshot {
    /// `EM_NUM_THREADS` if set to a parseable value ≥ 1.
    pub env_threads: Option<usize>,
    /// `std::thread::available_parallelism()` (1 if unknown).
    pub available_parallelism: usize,
    /// [`max_threads`] right now (override > env > available parallelism).
    pub effective: usize,
    /// Extra workers a maximal reservation would be granted right now —
    /// 0 whenever the budget is already claimed or `effective == 1`.
    pub probe_grant: usize,
}

/// Snapshots the current budget. The probe reservation is released before
/// returning, so this never holds workers.
pub fn budget_snapshot() -> BudgetSnapshot {
    let env_threads = std::env::var("EM_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1);
    let available_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let effective = max_threads();
    let probe_grant = reserve_workers(effective.saturating_sub(1)).extra();
    BudgetSnapshot {
        env_threads,
        available_parallelism,
        effective,
        probe_grant,
    }
}

/// Runs `work` over every item of `items`, fanning contiguous chunks of
/// the list out over workers reserved from the shared budget.
///
/// Items must be independent: `work` may only touch the item it is given
/// (plus shared read-only state captured by the closure). Under that
/// contract the result is **bitwise identical for every thread count** —
/// the partition never changes what is computed per item, only where.
/// With an empty or saturated budget the items run inline on the calling
/// thread, preserving the same per-item order of operations.
pub fn fan_out<T: Send, F: Fn(&mut T) + Sync>(items: &mut [T], work: F) {
    let n = items.len();
    if n == 0 {
        return;
    }
    let reservation = reserve_workers(n - 1);
    let nworkers = reservation.total().min(n);
    if nworkers <= 1 {
        for item in items.iter_mut() {
            work(item);
        }
        return;
    }
    let per = n.div_ceil(nworkers);
    std::thread::scope(|scope| {
        let mut chunks = items.chunks_mut(per);
        let head = chunks.next().expect("items is nonempty");
        for chunk in chunks {
            let work = &work;
            scope.spawn(move || {
                for item in chunk.iter_mut() {
                    work(item);
                }
            });
        }
        for item in head.iter_mut() {
            work(item);
        }
    });
}

/// Metric handles resolved once so reservations never take the registry
/// lock.
struct PoolMetrics {
    reservations: std::sync::Arc<em_obs::metrics::Counter>,
    workers_granted: std::sync::Arc<em_obs::metrics::Counter>,
}

fn pool_metrics() -> &'static PoolMetrics {
    static METRICS: OnceLock<PoolMetrics> = OnceLock::new();
    METRICS.get_or_init(|| PoolMetrics {
        reservations: em_obs::metrics::counter("threadpool.reservations"),
        workers_granted: em_obs::metrics::counter("threadpool.workers_granted"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // The override is process-global, so the tests below run under a lock
    // to avoid interleaving with each other.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn cap_of_one_grants_no_extras() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(Some(1));
        let r = reserve_workers(8);
        assert_eq!(r.extra(), 0);
        assert_eq!(r.total(), 1);
        set_max_threads(None);
    }

    #[test]
    fn nested_reservations_share_one_budget() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let outer = reserve_workers(2); // claims 2 of the 3 extras
        assert_eq!(outer.extra(), 2);
        let inner = reserve_workers(5); // only 1 extra left
        assert_eq!(inner.extra(), 1);
        let starved = reserve_workers(1);
        assert_eq!(starved.extra(), 0);
        drop(inner);
        let refilled = reserve_workers(5);
        assert_eq!(refilled.extra(), 1);
        drop(refilled);
        drop(outer);
        set_max_threads(None);
    }

    #[test]
    fn drop_releases_the_claim() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(Some(8));
        {
            let r = reserve_workers(7);
            assert_eq!(r.extra(), 7);
        }
        let again = reserve_workers(7);
        assert_eq!(again.extra(), 7);
        drop(again);
        set_max_threads(None);
    }

    #[test]
    fn budget_snapshot_reflects_override_and_claims() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(Some(4));
        let s = budget_snapshot();
        assert_eq!(s.effective, 4);
        assert_eq!(s.probe_grant, 3, "probe must see the whole idle budget");
        let held = reserve_workers(3);
        assert_eq!(held.extra(), 3);
        assert_eq!(
            budget_snapshot().probe_grant,
            0,
            "probe must see a claimed budget as empty"
        );
        drop(held);
        set_max_threads(None);
    }

    #[test]
    fn max_threads_is_at_least_one() {
        let _g = LOCK.lock().unwrap();
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
