//! Fused-attention equivalence suite: the packed, arena-backed, parallel
//! kernel in `em_nn::attention` must match the naive single-threaded
//! oracle [`em_nn::reference::attention`] — within 1e-5 on arbitrary
//! shapes/masks, and **bitwise** across 1/2/8-thread budgets (threads
//! partition (batch × head) items only; no reduction order ever changes).
//!
//! Mirrors `tests/gemm_equivalence.rs`: thread-cap tests mutate the
//! process-global budget and serialize on [`THREAD_CAP`].

use em_nn::tensor::Tensor;
use em_nn::{fused_attention, max_relative_error, numeric_gradient, reference, threadpool, MultiHeadAttention};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-noise in roughly [-1, 1) (Knuth multiplicative
/// hash), so property-test failures reproduce without capturing data.
fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 2.0
        })
        .collect()
}

fn bits(c: &[f32]) -> Vec<u32> {
    c.iter().map(|v| v.to_bits()).collect()
}

/// Deterministic ragged mask: ~1/4 of tokens padded, plus sequence 0 fully
/// masked when `with_fully_masked` (the hardest softmax edge case).
fn ragged_mask(batch: usize, seq: usize, salt: u32, with_fully_masked: bool) -> Vec<bool> {
    let mut mask: Vec<bool> = (0..batch * seq)
        .map(|i| (i as u32).wrapping_mul(2654435761).wrapping_add(salt) % 4 != 0)
        .collect();
    if with_fully_masked {
        mask[..seq].iter_mut().for_each(|m| *m = false);
    }
    mask
}

/// Runs both kernels on one configuration and returns (fused, oracle).
fn run_both(
    batch: usize,
    seq: usize,
    heads: usize,
    hd: usize,
    salt: u32,
    mask: &[bool],
) -> (Vec<f32>, Vec<f32>) {
    let dim = heads * hd;
    let q = fill(batch * seq * dim, salt);
    let k = fill(batch * seq * dim, salt.wrapping_add(1));
    let v = fill(batch * seq * dim, salt.wrapping_add(2));
    let qt = Tensor::from_vec(batch * seq, dim, q.clone());
    let kt = Tensor::from_vec(batch * seq, dim, k.clone());
    let vt = Tensor::from_vec(batch * seq, dim, v.clone());
    let fused = fused_attention(&qt, &kt, &vt, seq, heads, mask);
    let mut want = vec![0.0f32; batch * seq * dim];
    reference::attention(batch, seq, heads, hd, &q, &k, &v, mask, &mut want);
    (fused.data().to_vec(), want)
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

proptest! {
    /// Satellite requirement: arbitrary (batch, seq, heads, head_dim)
    /// with ragged masks — including fully-masked rows — agree with the
    /// naive oracle within 1e-5 absolute.
    #[test]
    fn fused_matches_reference_for_arbitrary_shapes(
        batch in 1usize..=4,
        seq in 1usize..=12,
        heads_pow in 0u32..3, // heads ∈ {1, 2, 4}
        hd in 1usize..=8,
        salt in 0u32..1000,
        fm in 0u32..2,
    ) {
        let fully_masked_first = fm == 1;
        let heads = 1usize << heads_pow;
        let mask = ragged_mask(batch, seq, salt, fully_masked_first);
        let (got, want) = run_both(batch, seq, heads, hd, salt, &mask);
        let diff = max_abs_diff(&got, &want);
        prop_assert!(
            diff <= 1e-5,
            "fused attention diverged by {diff} at batch={batch} seq={seq} heads={heads} hd={hd}"
        );
    }
}

/// The satellite's named edge cases, pinned explicitly — and asserted
/// **bitwise**, which holds because the fused path and the oracle perform
/// identical serial FMA reductions and the identical scale+softmax
/// operation sequence.
#[test]
fn pinned_edge_cases_match_bitwise() {
    // (batch, seq, heads, hd, fully-masked first sequence?)
    for (batch, seq, heads, hd, fm) in [
        (1, 7, 4, 3, false),  // batch == 1
        (3, 5, 1, 8, false),  // heads == 1
        (2, 6, 2, 4, true),   // a fully-masked sequence
        (1, 1, 1, 1, false),  // smallest possible call
        (2, 9, 4, 5, true),   // ragged + fully-masked combined
    ] {
        let mask = ragged_mask(batch, seq, 7, fm);
        let (got, want) = run_both(batch, seq, heads, hd, 31, &mask);
        assert_eq!(
            bits(&want),
            bits(&got),
            "fused attention not bitwise at batch={batch} seq={seq} heads={heads} hd={hd} fm={fm}"
        );
    }
}

/// Fully-masked rows must produce exactly zero context (the all-zero
/// probability row contract the pooling layer depends on).
#[test]
fn fully_masked_batch_yields_zero_output() {
    let (batch, seq, heads, hd) = (2, 4, 2, 3);
    let mask = vec![false; batch * seq];
    let (got, want) = run_both(batch, seq, heads, hd, 5, &mask);
    assert!(got.iter().all(|&v| v == 0.0), "fused output must be all-zero");
    assert!(want.iter().all(|&v| v == 0.0), "oracle output must be all-zero");
}

/// Satellite requirement: the fused kernel is thread-count invariant. The
/// shape meets the parallel threshold (4·4·64²·32 = 2^21), so workers
/// genuinely spawn at caps > 1 on multi-core hosts; on any host the
/// result must be bitwise identical to the oracle at every cap.
#[test]
fn forward_is_identical_at_1_2_and_8_threads() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (batch, seq, heads, hd) = (4usize, 64usize, 4usize, 32usize);
    let mask = ragged_mask(batch, seq, 13, true);
    let dim = heads * hd;
    let q = fill(batch * seq * dim, 41);
    let k = fill(batch * seq * dim, 42);
    let v = fill(batch * seq * dim, 43);
    let mut want = vec![0.0f32; batch * seq * dim];
    reference::attention(batch, seq, heads, hd, &q, &k, &v, &mask, &mut want);
    let want = bits(&want);
    for cap in [1usize, 2, 8] {
        let qt = Tensor::from_vec(batch * seq, dim, q.clone());
        let kt = Tensor::from_vec(batch * seq, dim, k.clone());
        let vt = Tensor::from_vec(batch * seq, dim, v.clone());
        threadpool::set_max_threads(Some(cap));
        let got = fused_attention(&qt, &kt, &vt, seq, heads, &mask);
        threadpool::set_max_threads(None);
        assert_eq!(
            want,
            bits(got.data()),
            "fused attention diverged from oracle at {cap} thread(s)"
        );
    }
}

/// Full-layer parity: forward output, input gradient, and all four
/// projection weight gradients are bitwise identical at 1, 2, and 8
/// threads (the backward fan-out partitions (batch × head) items and
/// gives each worker private dA/dS workspace).
#[test]
fn layer_forward_backward_is_thread_count_invariant() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (batch, seq, heads, dim) = (4usize, 64usize, 4usize, 128usize);
    let mask = ragged_mask(batch, seq, 17, false);
    let x = Tensor::from_vec(batch * seq, dim, fill(batch * seq * dim, 51));
    let dy = Tensor::from_vec(batch * seq, dim, fill(batch * seq * dim, 52));

    let run_at = |cap: usize| {
        // Fresh layer per cap from one seed: identical weights, zero grads.
        let mut rng = StdRng::seed_from_u64(99);
        let mut mha = MultiHeadAttention::new(dim, heads, &mut rng);
        threadpool::set_max_threads(Some(cap));
        let y = mha.forward(&x, seq, &mask);
        let dx = mha.backward(&dy);
        threadpool::set_max_threads(None);
        (
            bits(y.data()),
            bits(dx.data()),
            bits(mha.wq.weight.grad.data()),
            bits(mha.wk.weight.grad.data()),
            bits(mha.wv.weight.grad.data()),
            bits(mha.wo.weight.grad.data()),
        )
    };

    let want = run_at(1);
    for cap in [2usize, 8] {
        let got = run_at(cap);
        assert_eq!(want.0, got.0, "forward diverged at {cap} thread(s)");
        assert_eq!(want.1, got.1, "input gradient diverged at {cap} thread(s)");
        assert_eq!(want.2, got.2, "wq gradient diverged at {cap} thread(s)");
        assert_eq!(want.3, got.3, "wk gradient diverged at {cap} thread(s)");
        assert_eq!(want.4, got.4, "wv gradient diverged at {cap} thread(s)");
        assert_eq!(want.5, got.5, "wo gradient diverged at {cap} thread(s)");
    }
}

/// Satellite requirement: finite-difference gradcheck of the new backward
/// through the full layer (projections + fused core), on a ragged mask
/// with multiple heads.
#[test]
fn backward_gradchecks_through_fused_kernel() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut mha = MultiHeadAttention::new(8, 2, &mut rng);
    let (batch, seq) = (2usize, 3usize);
    let x0 = fill(batch * seq * 8, 77);
    let mask = vec![true, true, false, true, true, true];
    // Random projection weights so the scalar loss mixes every output.
    let weights = fill(batch * seq * 8, 99);

    let x = Tensor::from_vec(batch * seq, 8, x0.clone());
    let y = mha.forward(&x, seq, &mask);
    let dy = Tensor::from_vec(y.rows(), y.cols(), weights.clone());
    let dx = mha.backward(&dy);

    let numeric = numeric_gradient(
        &x0,
        |vals| {
            let xt = Tensor::from_vec(batch * seq, 8, vals.to_vec());
            let yt = mha.forward_inference(&xt, seq, &mask);
            yt.data().iter().zip(&weights).map(|(a, b)| a * b).sum()
        },
        1e-2,
    );
    let err = max_relative_error(dx.data(), &numeric);
    assert!(err < 0.05, "fused attention gradcheck error {err}");
}
