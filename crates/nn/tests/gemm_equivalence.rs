//! Kernel-equivalence suite: the blocked / parallel GEMM must be **bitwise
//! identical** to the naive [`em_nn::reference`] kernels for every shape and
//! every thread count.
//!
//! This lives in its own integration binary because the thread-count parity
//! tests mutate the process-global worker budget via
//! [`em_nn::threadpool::set_max_threads`]; the unit tests inside the library
//! never touch it, and the tests here that do serialize on [`THREAD_CAP`].

use em_nn::{gemm, reference, threadpool};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-noise in roughly [-1, 1) (Knuth multiplicative hash),
/// so property-test failures reproduce without capturing the data vectors.
fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 2.0
        })
        .collect()
}

fn bits(c: &[f32]) -> Vec<u32> {
    c.iter().map(|v| v.to_bits()).collect()
}

/// Reference result for one (transpose-layout) variant, computed by the
/// naive kernels that predate the blocked implementation.
fn reference_gemm(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    a_trans: bool,
    b: &[f32],
    b_trans: bool,
) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    match (a_trans, b_trans) {
        (false, false) => reference::matmul(m, k, n, a, b, &mut c),
        (true, false) => reference::t_matmul(k, m, n, a, b, &mut c),
        (false, true) => reference::matmul_t(m, k, n, a, b, &mut c),
        (true, true) => {
            // No naive kernel ships this layout; build it by materializing
            // both transposes, which is exact (transposition moves bits).
            let mut at = vec![0.0f32; m * k];
            for p in 0..k {
                for i in 0..m {
                    at[i * k + p] = a[p * m + i];
                }
            }
            let mut bt = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    bt[p * n + j] = b[j * k + p];
                }
            }
            reference::matmul(m, k, n, &at, &bt, &mut c);
        }
    }
    c
}

/// Asserts blocked output == reference output, bit for bit, for all four
/// transpose layouts of one shape.
fn assert_all_layouts_match(m: usize, k: usize, n: usize) -> Result<(), TestCaseError> {
    for (a_trans, b_trans) in [(false, false), (true, false), (false, true), (true, true)] {
        let a = fill(m * k, 1 ^ (a_trans as u32) << 4);
        let b = fill(k * n, 2 ^ (b_trans as u32) << 4);
        let want = reference_gemm(m, k, n, &a, a_trans, &b, b_trans);

        // Poison the output buffer: k == 0 must still zero it.
        let mut got = vec![f32::NAN; m * n];
        gemm::gemm_blocked(m, k, n, &a, a_trans, &b, b_trans, &mut got);
        prop_assert_eq!(
            bits(&want),
            bits(&got),
            "gemm_blocked diverged at m={} k={} n={} a_trans={} b_trans={}",
            m,
            k,
            n,
            a_trans,
            b_trans
        );

        // The dispatching entry point must agree on both sides of its
        // small-size cutoff as well.
        let mut got2 = vec![f32::NAN; m * n];
        gemm::gemm(m, k, n, &a, a_trans, &b, b_trans, &mut got2);
        prop_assert_eq!(
            bits(&want),
            bits(&got2),
            "gemm dispatcher diverged at m={} k={} n={} a_trans={} b_trans={}",
            m,
            k,
            n,
            a_trans,
            b_trans
        );
    }
    Ok(())
}

proptest! {
    /// Satellite requirement: arbitrary shapes in 1..64 — with 0 included so
    /// the degenerate m=0 / n=0 / k=0 cases are drawn too — match the naive
    /// reference kernels exactly in all four transpose layouts.
    #[test]
    fn blocked_matches_reference_for_arbitrary_shapes(
        m in 0usize..=64,
        k in 0usize..=64,
        n in 0usize..=64,
    ) {
        assert_all_layouts_match(m, k, n)?;
    }
}

/// The degenerate axes, pinned explicitly (the property test only draws them
/// with probability ~1/65 per axis).
#[test]
fn degenerate_dimensions_match_reference() {
    for (m, k, n) in [
        (0, 5, 7),
        (5, 0, 7),
        (5, 7, 0),
        (0, 0, 0),
        (1, 0, 1),
        (0, 64, 0),
    ] {
        assert_all_layouts_match(m, k, n).unwrap();
    }
}

/// Shapes straddling the microkernel tile (MR=8, NR=32) and the blocked
/// dispatch threshold, checked exhaustively around the edges.
#[test]
fn tile_edge_shapes_match_reference() {
    for m in [1, 7, 8, 9, 16, 17] {
        for n in [1, 31, 32, 33, 63] {
            assert_all_layouts_match(m, 17, n).unwrap();
        }
    }
}

/// Runs the acceptance-shaped multiply at a given thread cap and returns the
/// output bits. The shape exceeds `gemm`'s parallel threshold, so with cap
/// > 1 the row-band workers genuinely spawn.
fn run_at_threads(cap: usize) -> Vec<u32> {
    let (m, k, n) = (64, 512, 128); // 64·512·128 = 2^22 ≥ parallel threshold
    let a = fill(m * k, 11);
    let b = fill(k * n, 12);
    let mut c = vec![0.0f32; m * n];
    threadpool::set_max_threads(Some(cap));
    gemm::gemm_blocked(m, k, n, &a, false, &b, false, &mut c);
    threadpool::set_max_threads(None);
    bits(&c)
}

/// Satellite requirement: results are identical at 1, 2 and 8 threads, and
/// identical to the naive reference. Row-band partitioning never splits the
/// k reduction, so the per-element accumulation order is thread-invariant.
#[test]
fn results_are_identical_at_1_2_and_8_threads() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (m, k, n) = (64, 512, 128);
    let a = fill(m * k, 11);
    let b = fill(k * n, 12);
    let mut want = vec![0.0f32; m * n];
    reference::matmul(m, k, n, &a, &b, &mut want);
    let want = bits(&want);

    for cap in [1, 2, 8] {
        let got = run_at_threads(cap);
        assert_eq!(
            want, got,
            "parallel GEMM diverged from reference at {cap} thread(s)"
        );
    }
}

/// The transposed layouts must be thread-count invariant too — they share
/// the packing code, but the A-side packing differs per layout.
#[test]
fn transposed_layouts_are_thread_count_invariant() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (m, k, n) = (64, 512, 128);
    for (a_trans, b_trans) in [(true, false), (false, true), (true, true)] {
        let a = fill(m * k, 21);
        let b = fill(k * n, 22);
        let want = reference_gemm(m, k, n, &a, a_trans, &b, b_trans);
        let want = bits(&want);
        for cap in [1, 2, 8] {
            let mut c = vec![0.0f32; m * n];
            threadpool::set_max_threads(Some(cap));
            gemm::gemm_blocked(m, k, n, &a, a_trans, &b, b_trans, &mut c);
            threadpool::set_max_threads(None);
            assert_eq!(
                want,
                bits(&c),
                "layout (a_trans={a_trans}, b_trans={b_trans}) diverged at {cap} thread(s)"
            );
        }
    }
}
