//! Fused-optimizer equivalence suite: the arena-backed blocked
//! [`em_nn::FusedAdam`] / [`em_nn::FusedSgd`] must match the naive
//! single-threaded oracles in `em_nn::reference` — **bitwise**, on
//! arbitrary parameter shapes, with weight decay on and off and the clip
//! both triggered and untriggered — and must produce identical bits at
//! 1, 2, and 8 worker threads. The parallelized LayerNorm / Embedding
//! backward passes carry the same thread-invariance contract.
//!
//! Mirrors `tests/attention_equivalence.rs`: thread-cap tests mutate the
//! process-global budget and serialize on [`THREAD_CAP`].

use em_nn::tensor::Tensor;
use em_nn::{reference, threadpool, Embedding, FusedAdam, FusedSgd, LayerNorm, Param, FUSED_BLOCK};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-noise in roughly [-1, 1) (Knuth multiplicative
/// hash), so property-test failures reproduce without capturing data.
fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 2.0
        })
        .collect()
}

fn bits(c: &[f32]) -> Vec<u32> {
    c.iter().map(|v| v.to_bits()).collect()
}

/// Builds parameters with pseudo-noise values and zero gradients.
fn make_params(shapes: &[(usize, usize)], salt: u32) -> Vec<Param> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, &(r, c))| {
            let mut p = Param::zeros(r, c);
            p.value = Tensor::from_vec(r, c, fill(r * c, salt.wrapping_add(i as u32 * 7)));
            p
        })
        .collect()
}

/// Deterministic per-step gradients (fresh noise each step via the salt).
fn set_grads(params: &mut [Param], salt: u32) {
    for (i, p) in params.iter_mut().enumerate() {
        let (r, c) = (p.grad.rows(), p.grad.cols());
        p.grad = Tensor::from_vec(r, c, fill(r * c, salt.wrapping_add(31 + i as u32 * 13)));
    }
}

/// Naive single-threaded Adam trajectory built from the `reference`
/// oracles: blocked fixed-order grad norm → clip scale → per-parameter
/// [`reference::adam_update`].
struct OracleAdam {
    opt_template: FusedAdam,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl OracleAdam {
    fn new(template: &FusedAdam, params: &[Param]) -> Self {
        OracleAdam {
            opt_template: template.clone(),
            t: 0,
            m: params.iter().map(|p| vec![0.0; p.value.len()]).collect(),
            v: params.iter().map(|p| vec![0.0; p.value.len()]).collect(),
        }
    }

    fn step(&mut self, params: &mut [Param], clip: Option<f32>) -> f32 {
        self.t += 1;
        let grads: Vec<&[f32]> = params.iter().map(|p| p.grad.data()).collect();
        let norm = clip
            .map(|_| reference::grad_norm(&grads, FUSED_BLOCK))
            .unwrap_or(0.0);
        drop(grads);
        let scale = clip.map_or(1.0, |c| reference::clip_scale(norm, c));
        let o = &self.opt_template;
        let bc1 = 1.0 - o.beta1.powi(self.t as i32);
        let bc2 = 1.0 - o.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            let Param { value, grad } = p;
            reference::adam_update(
                value.data_mut(),
                grad.data_mut(),
                &mut self.m[i],
                &mut self.v[i],
                scale,
                bc1,
                bc2,
                o.lr,
                o.beta1,
                o.beta2,
                o.eps,
                o.weight_decay,
            );
        }
        norm
    }
}

/// Clip regimes the property tests sweep: no clipping at all, a max norm
/// far above any noise gradient (scale stays 1.0), and a tiny max norm
/// that always triggers rescaling.
fn clip_of(mode: u32) -> Option<f32> {
    match mode {
        0 => None,
        1 => Some(1e6),
        _ => Some(0.25),
    }
}

fn run_fused_adam(
    shapes: &[(usize, usize)],
    salt: u32,
    weight_decay: f32,
    clip: Option<f32>,
    steps: usize,
) -> (Vec<Param>, Vec<Param>, Vec<f32>, Vec<f32>) {
    let mut fused_params = make_params(shapes, salt);
    let mut oracle_params = make_params(shapes, salt);
    let mut fused = FusedAdam::new(0.01);
    fused.weight_decay = weight_decay;
    let mut oracle = OracleAdam::new(&fused, &oracle_params);
    let mut fused_norms = Vec::with_capacity(steps);
    let mut oracle_norms = Vec::with_capacity(steps);
    for s in 0..steps {
        let gsalt = salt.wrapping_add(1000 + s as u32 * 97);
        set_grads(&mut fused_params, gsalt);
        set_grads(&mut oracle_params, gsalt);
        let mut refs: Vec<&mut Param> = fused_params.iter_mut().collect();
        fused_norms.push(fused.step(&mut refs, clip));
        oracle_norms.push(oracle.step(&mut oracle_params, clip));
    }
    (fused_params, oracle_params, fused_norms, oracle_norms)
}

proptest! {
    /// Core tentpole contract: the fused blocked parallel AdamW step is
    /// bitwise identical to the naive oracle across shapes, weight-decay
    /// settings, clip regimes, and multi-step trajectories.
    #[test]
    fn fused_adam_matches_oracle_bitwise(
        nparams in 1usize..4,
        rows in 1usize..5,
        cols in 1usize..48,
        wd in 0u32..2,
        clip_mode in 0u32..3,
        steps in 1usize..4,
        salt in 0u32..500,
    ) {
        // Vary shapes across parameters so block boundaries move around.
        let shapes: Vec<(usize, usize)> =
            (0..nparams).map(|i| (rows + i, cols + 3 * i)).collect();
        let weight_decay = if wd == 1 { 0.01 } else { 0.0 };
        let (fp, op, fnorms, onorms) =
            run_fused_adam(&shapes, salt, weight_decay, clip_of(clip_mode), steps);
        prop_assert_eq!(bits(&fnorms), bits(&onorms), "pre-clip norms diverged");
        for (f, o) in fp.iter().zip(&op) {
            prop_assert_eq!(bits(f.value.data()), bits(o.value.data()), "values diverged");
            prop_assert!(f.grad.data().iter().all(|&g| g == 0.0), "fused left gradients unzeroed");
            prop_assert!(o.grad.data().iter().all(|&g| g == 0.0), "oracle left gradients unzeroed");
        }
    }

    /// Same contract for fused momentum SGD.
    #[test]
    fn fused_sgd_matches_oracle_bitwise(
        nparams in 1usize..4,
        rows in 1usize..5,
        cols in 1usize..48,
        momentum in 0u32..2,
        clip_mode in 0u32..3,
        steps in 1usize..4,
        salt in 0u32..500,
    ) {
        let shapes: Vec<(usize, usize)> =
            (0..nparams).map(|i| (rows + i, cols + 3 * i)).collect();
        let momentum = if momentum == 1 { 0.9 } else { 0.0 };
        let clip = clip_of(clip_mode);
        let mut fused_params = make_params(&shapes, salt);
        let mut oracle_params = make_params(&shapes, salt);
        let mut fused = FusedSgd::new(0.05, momentum);
        let mut vel: Vec<Vec<f32>> =
            oracle_params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        for s in 0..steps {
            let gsalt = salt.wrapping_add(2000 + s as u32 * 89);
            set_grads(&mut fused_params, gsalt);
            set_grads(&mut oracle_params, gsalt);
            let mut refs: Vec<&mut Param> = fused_params.iter_mut().collect();
            let fnorm = fused.step(&mut refs, clip);
            let grads: Vec<&[f32]> = oracle_params.iter().map(|p| p.grad.data()).collect();
            let onorm = clip
                .map(|_| reference::grad_norm(&grads, FUSED_BLOCK))
                .unwrap_or(0.0);
            drop(grads);
            let scale = clip.map_or(1.0, |c| reference::clip_scale(onorm, c));
            for (i, p) in oracle_params.iter_mut().enumerate() {
                let Param { value, grad } = p;
                reference::sgd_update(
                    value.data_mut(),
                    grad.data_mut(),
                    &mut vel[i],
                    scale,
                    0.05,
                    momentum,
                );
            }
            prop_assert_eq!(fnorm.to_bits(), onorm.to_bits(), "pre-clip norms diverged");
        }
        for (f, o) in fused_params.iter().zip(&oracle_params) {
            prop_assert_eq!(bits(f.value.data()), bits(o.value.data()), "values diverged");
            prop_assert!(f.grad.data().iter().all(|&g| g == 0.0), "fused left gradients unzeroed");
        }
    }
}

/// Shapes whose parameters individually span multiple `FUSED_BLOCK`s (and
/// one that straddles a partial tail block), so the blocked reduction and
/// the parallel fan-out genuinely split work.
fn multi_block_shapes() -> Vec<(usize, usize)> {
    vec![(3, FUSED_BLOCK), (1, FUSED_BLOCK + 1234), (7, 129), (1, 1)]
}

/// Fused Adam against the oracle on parameters spanning several blocks —
/// the configuration the fine-tuning models actually present (embedding
/// tables are hundreds of thousands of elements).
#[test]
fn fused_adam_matches_oracle_across_block_boundaries() {
    let (fp, op, fnorms, onorms) =
        run_fused_adam(&multi_block_shapes(), 77, 0.01, Some(0.25), 3);
    assert_eq!(bits(&fnorms), bits(&onorms), "pre-clip norms diverged");
    for (f, o) in fp.iter().zip(&op) {
        assert_eq!(bits(f.value.data()), bits(o.value.data()), "values diverged");
    }
}

/// Satellite requirement: the fused step is bitwise thread-count
/// invariant. A multi-step clipped trajectory over multi-block parameters
/// produces identical value bits (and identical returned norms) at 1, 2,
/// and 8 worker threads.
#[test]
fn fused_step_is_identical_at_1_2_and_8_threads() {
    let _guard = THREAD_CAP.lock().unwrap();
    let shapes = multi_block_shapes();
    let run_at = |cap: usize| {
        let mut params = make_params(&shapes, 123);
        let mut adam = FusedAdam::new(0.01);
        adam.weight_decay = 0.01;
        let mut sgd = FusedSgd::new(0.05, 0.9);
        let mut norms = Vec::new();
        threadpool::set_max_threads(Some(cap));
        for s in 0..3u32 {
            set_grads(&mut params, 3000 + s * 41);
            let mut refs: Vec<&mut Param> = params.iter_mut().collect();
            norms.push(adam.step(&mut refs, Some(0.25)));
            set_grads(&mut params, 4000 + s * 43);
            let mut refs: Vec<&mut Param> = params.iter_mut().collect();
            norms.push(sgd.step(&mut refs, Some(0.25)));
        }
        threadpool::set_max_threads(None);
        let value_bits: Vec<Vec<u32>> = params.iter().map(|p| bits(p.value.data())).collect();
        (bits(&norms), value_bits)
    };
    let want = run_at(1);
    for cap in [2usize, 8] {
        let got = run_at(cap);
        assert_eq!(want.0, got.0, "norms diverged at {cap} thread(s)");
        assert_eq!(want.1, got.1, "values diverged at {cap} thread(s)");
    }
}

/// The parallelized LayerNorm backward (blocked row fan-out + fixed-order
/// dγ/dβ partial reduction) is bitwise thread-count invariant on a row
/// count that spans several row blocks plus a ragged tail.
#[test]
fn layernorm_backward_is_thread_count_invariant() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (rows, d) = (64 * 3 + 17, 32);
    let x = Tensor::from_vec(rows, d, fill(rows * d, 61));
    let dy = Tensor::from_vec(rows, d, fill(rows * d, 62));
    let run_at = |cap: usize| {
        let mut ln = LayerNorm::new(d);
        // Non-trivial γ/β so both gradient paths carry signal.
        ln.gamma.value = Tensor::from_vec(1, d, fill(d, 63));
        ln.beta.value = Tensor::from_vec(1, d, fill(d, 64));
        threadpool::set_max_threads(Some(cap));
        let y = ln.forward(&x);
        let dx = ln.backward(&dy);
        threadpool::set_max_threads(None);
        (
            bits(y.data()),
            bits(dx.data()),
            bits(ln.gamma.grad.data()),
            bits(ln.beta.grad.data()),
        )
    };
    let want = run_at(1);
    for cap in [2usize, 8] {
        let got = run_at(cap);
        assert_eq!(want.0, got.0, "forward diverged at {cap} thread(s)");
        assert_eq!(want.1, got.1, "dx diverged at {cap} thread(s)");
        assert_eq!(want.2, got.2, "dgamma diverged at {cap} thread(s)");
        assert_eq!(want.3, got.3, "dbeta diverged at {cap} thread(s)");
    }
}

/// The parallelized Embedding backward (destination-row partition) is
/// bitwise thread-count invariant on a scatter large enough to take the
/// parallel path, with ids that repeat (the order-sensitive case: repeated
/// ids must accumulate in id order on every partition).
#[test]
fn embedding_backward_is_thread_count_invariant() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (vocab, dim, n_ids) = (64usize, 16usize, 4096usize);
    // ids*dim = 65536 ≥ the 1<<15 parallel threshold; heavy repetition.
    let ids: Vec<u32> = (0..n_ids)
        .map(|i| ((i as u32).wrapping_mul(2654435761) >> 7) % vocab as u32)
        .collect();
    let dy = Tensor::from_vec(n_ids, dim, fill(n_ids * dim, 71));
    let run_at = |cap: usize| {
        let mut rng = StdRng::seed_from_u64(17);
        let mut emb = Embedding::new(vocab, dim, &mut rng);
        let _ = emb.forward(&ids);
        threadpool::set_max_threads(Some(cap));
        emb.backward(&dy);
        threadpool::set_max_threads(None);
        bits(emb.table.grad.data())
    };
    let want = run_at(1);
    for cap in [2usize, 8] {
        assert_eq!(want, run_at(cap), "table gradient diverged at {cap} thread(s)");
    }
}
