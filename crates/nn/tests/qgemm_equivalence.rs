//! Quantized-GEMM equivalence suite: the packed / VNNI / parallel int8
//! path must be **bitwise identical** to the naive oracle in
//! [`em_nn::reference::qgemm`] for every shape and every thread count —
//! both quantize with the same symmetric round-to-nearest scheme and
//! accumulate in exact i32, so there is no tolerance to hide behind.
//!
//! Lives in its own integration binary because the thread-count parity
//! tests mutate the process-global worker budget via
//! [`em_nn::threadpool::set_max_threads`]; tests that do so serialize on
//! [`THREAD_CAP`].

use em_nn::qgemm::{self, QuantizedMatrix};
use em_nn::{reference, threadpool};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes every test that overrides the global thread cap.
static THREAD_CAP: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-noise (Knuth multiplicative hash) scaled to
/// roughly [-2, 2), so failures reproduce without capturing data vectors.
fn fill(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h >> 8) as f32 / (1 << 24) as f32 - 0.5) * 4.0
        })
        .collect()
}

fn bits(c: &[f32]) -> Vec<u32> {
    c.iter().map(|v| v.to_bits()).collect()
}

fn packed(m: usize, k: usize, n: usize, x: &[f32], w: &[f32]) -> Vec<f32> {
    let qm = QuantizedMatrix::quantize(k, n, w);
    let mut out = vec![0.0f32; m * n];
    qgemm::qgemm(m, x, &qm, &mut out);
    out
}

fn oracle(m: usize, k: usize, n: usize, x: &[f32], w: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    reference::qgemm(m, k, n, x, w, &mut out);
    out
}

proptest! {
    /// Arbitrary shapes around the MR=8 / NR=32 / k-group-of-4 tile
    /// edges: packed path and naive oracle agree bitwise.
    #[test]
    fn packed_matches_oracle_bitwise(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..40,
        salt in 0u32..1000,
    ) {
        let w = fill(k * n, salt);
        let x = fill(m * k, salt.wrapping_add(1));
        prop_assert_eq!(
            bits(&packed(m, k, n, &x, &w)),
            bits(&oracle(m, k, n, &x, &w))
        );
    }

    /// Zero rows / zero columns quantize to scale 0 and must come out as
    /// exact zeros on both paths.
    #[test]
    fn zero_scale_rows_and_columns_agree(
        m in 1usize..6,
        k in 1usize..20,
        n in 1usize..20,
        zrow in 0usize..6,
        zcol in 0usize..20,
        salt in 0u32..1000,
    ) {
        let mut w = fill(k * n, salt);
        let mut x = fill(m * k, salt.wrapping_add(7));
        let zrow = zrow % m;
        let zcol = zcol % n;
        x[zrow * k..(zrow + 1) * k].iter_mut().for_each(|v| *v = 0.0);
        for p in 0..k {
            w[p * n + zcol] = 0.0;
        }
        let fast = packed(m, k, n, &x, &w);
        prop_assert_eq!(bits(&fast), bits(&oracle(m, k, n, &x, &w)));
        for j in 0..n {
            prop_assert_eq!(fast[zrow * n + j], 0.0);
        }
        for i in 0..m {
            prop_assert_eq!(fast[i * n + zcol], 0.0);
        }
    }
}

/// Exact tile-edge shapes: full tiles, one-off edges, single panels.
#[test]
fn tile_edge_shapes_match_bitwise() {
    for &(m, k, n) in &[
        (8, 4, 32),
        (8, 4, 33),
        (9, 4, 32),
        (7, 3, 31),
        (16, 8, 64),
        (17, 5, 65),
        (1, 1, 1),
        (1, 512, 1),
        (24, 96, 96),
    ] {
        let w = fill(k * n, 11);
        let x = fill(m * k, 13);
        assert_eq!(
            bits(&packed(m, k, n, &x, &w)),
            bits(&oracle(m, k, n, &x, &w)),
            "mismatch at ({m},{k},{n})"
        );
    }
}

/// Exact round-half-away-from-zero ties: with a row whose maxabs is 127
/// the activation scale is exactly 1.0, so these values hit the .5
/// quantization boundaries dead on — the vectorized rounding must agree
/// with the scalar `quantize_value` on every one of them.
#[test]
fn rounding_tie_values_match_oracle_bitwise() {
    let ties = [
        127.0f32,
        0.5,
        -0.5,
        1.5,
        -1.5,
        2.5,
        -2.5,
        126.5,
        -126.5,
        0.499_999_97,
        -0.499_999_97,
        0.500_000_06,
        -0.0,
        0.0,
        3.5,
        -127.0,
        100.5,
        -100.5,
    ];
    let (m, k, n) = (2, ties.len(), 37);
    let mut x = Vec::new();
    x.extend_from_slice(&ties);
    x.extend(ties.iter().rev());
    let w = fill(k * n, 41);
    assert_eq!(
        bits(&packed(m, k, n, &x, &w)),
        bits(&oracle(m, k, n, &x, &w))
    );
}

/// The row-band fan-out must not change a single bit: i32 accumulation is
/// exact, so partitions are invisible. A shape above the parallel volume
/// threshold, run at 1/2/8 threads, must equal the oracle each time.
#[test]
fn thread_count_parity_is_bitwise() {
    let _guard = THREAD_CAP.lock().unwrap();
    let (m, k, n) = (64, 128, 256); // volume 2^21, at the parallel gate
    let w = fill(k * n, 17);
    let x = fill(m * k, 19);
    let expect = bits(&oracle(m, k, n, &x, &w));
    for threads in [1, 2, 8] {
        threadpool::set_max_threads(Some(threads));
        let got = bits(&packed(m, k, n, &x, &w));
        assert_eq!(got, expect, "divergence at {threads} threads");
    }
    threadpool::set_max_threads(None);
}

/// Quantizing is idempotent in the API sense: two `QuantizedMatrix`es of
/// the same weights produce identical outputs, and requantizing after a
/// round trip through `set_precision` keeps `forward_inference` stable.
#[test]
fn requantization_is_deterministic() {
    let (m, k, n) = (5, 24, 12);
    let w = fill(k * n, 23);
    let x = fill(m * k, 29);
    assert_eq!(bits(&packed(m, k, n, &x, &w)), bits(&packed(m, k, n, &x, &w)));
}

/// The f32 path of a Linear must be bit-identical before quantization,
/// after `set_precision(Int8)` → the int8 path differs within drift, and
/// after `set_precision(Full)` → restored exactly.
#[test]
fn linear_precision_toggle_restores_f32_bits() {
    use em_nn::qgemm::InferencePrecision;
    use em_nn::{Linear, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(42);
    let mut layer = Linear::new(24, 16, &mut rng);
    let x = Tensor::from_vec(6, 24, fill(6 * 24, 31));
    let baseline = bits(layer.forward_inference(&x).data());

    layer.set_precision(InferencePrecision::Int8);
    let quantized = layer.forward_inference(&x);
    for (q, &b) in quantized.data().iter().zip(&baseline) {
        let exact = f32::from_bits(b);
        assert!(
            (q - exact).abs() < 0.2,
            "int8 drift out of bound: {q} vs {exact}"
        );
    }

    layer.set_precision(InferencePrecision::Full);
    assert_eq!(
        bits(layer.forward_inference(&x).data()),
        baseline,
        "returning to Full precision must restore the exact f32 bits"
    );
}
