//! Minimal JSON string emission for the JSONL trace exporter.
//!
//! Only what the exporter needs: escaped strings and finite-number
//! formatting. Writing (not parsing) keeps the crate dependency-free.

/// Appends `s` to `out` as a double-quoted JSON string with the mandatory
/// escapes (`"`, `\`, control characters).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float as a JSON number, or `null` when non-finite (JSON has
/// no NaN/Infinity literals).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc(s: &str) -> String {
        let mut out = String::new();
        push_escaped(&mut out, s);
        out
    }

    #[test]
    fn plain_strings_are_quoted() {
        assert_eq!(esc("abc"), "\"abc\"");
    }

    #[test]
    fn quotes_backslashes_and_controls_are_escaped() {
        assert_eq!(esc("a\"b"), "\"a\\\"b\"");
        assert_eq!(esc("a\\b"), "\"a\\\\b\"");
        assert_eq!(esc("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(esc("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        push_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
