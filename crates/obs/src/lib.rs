//! # em-obs — zero-dependency observability for the EM pipeline
//!
//! Structured tracing ([`span!`]/[`event!`] over per-thread ring buffers
//! with a JSONL exporter), a registry of atomic counters / gauges /
//! histograms ([`metrics`]), and a run-profile summary printer
//! ([`report`]). Every other crate in the workspace instruments through
//! this one, so Table 6 cost rows and the BENCH_*.json numbers can be
//! derived from *measured* token/throughput/latency counters instead of
//! hard-coded extrapolation.
//!
//! # Quick start
//!
//! Set `EM_TRACE=path.jsonl` in the environment: capture switches on and
//! every span/event is streamed to `path.jsonl` as JSON lines. Without
//! `EM_TRACE`, capture is off and every probe is a single atomic load.
//!
//! ```
//! let _span = em_obs::span!("my.stage", items = 42usize);
//! em_obs::event!(warn, "my.skip", reason = "missing input");
//! em_obs::metrics::counter("my.items").add(42);
//! ```
//!
//! Programmatic control (tests, profilers):
//!
//! ```
//! em_obs::trace::set_capture(true);
//! {
//!     let _s = em_obs::span!("doc.example");
//! }
//! let records = em_obs::trace::drain();
//! assert!(records.iter().any(|r| r.name == "doc.example"));
//! em_obs::trace::set_capture(false);
//! println!("{}", em_obs::report::render_summary(&records, 10));
//! ```
//!
//! # Overhead contract
//!
//! Capture off: one relaxed atomic load per probe, no allocation, no
//! `Instant::now()`. Capture on: field vectors are small and spans are
//! placed on coarse stages (per evaluation item, per batch, per *large*
//! GEMM), keeping the measured overhead of a traced `figure2_lodo` /
//! `profile_lodo` run under 2% (see DESIGN.md §6).

pub mod json;
pub mod metrics;
pub mod report;
pub mod trace;

pub use trace::{capture_enabled, drain, flush_current_thread, set_capture, write_jsonl};
pub use trace::{FieldValue, Level, RecordKind, SpanGuard, TraceRecord};

/// Opens a span; the returned guard records the span (with duration) when
/// dropped. Fields are `name = expr` pairs; expressions are only
/// evaluated when capture is on.
///
/// ```
/// let _guard = em_obs::span!("stage.name", size = 10usize, kind = "full");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::capture_enabled() {
            $crate::trace::SpanGuard::new(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Emits an instant event at a level (`debug`/`info`/`warn`/`error`)
/// under the current thread's open span. Field expressions are only
/// evaluated when capture is on.
///
/// ```
/// em_obs::event!(warn, "table.row_skipped", model = "GPT-2");
/// ```
#[macro_export]
macro_rules! event {
    ($level:ident, $name:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::trace::capture_enabled() {
            $crate::trace::emit_event(
                $crate::__obs_level!($level),
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($val))),*],
            );
        }
    };
}

/// Maps the lower-case level idents accepted by [`event!`] onto
/// [`trace::Level`] variants. Implementation detail of the macros.
#[doc(hidden)]
#[macro_export]
macro_rules! __obs_level {
    (debug) => {
        $crate::trace::Level::Debug
    };
    (info) => {
        $crate::trace::Level::Info
    };
    (warn) => {
        $crate::trace::Level::Warn
    };
    (error) => {
        $crate::trace::Level::Error
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_no_op_without_capture_and_capture_with_it() {
        // Serialize against the other capture-toggling tests.
        let _g = crate::trace::tests::LOCK
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        crate::trace::set_capture(false);
        let _ = crate::trace::drain();
        let mut evaluated = false;
        {
            let _s = crate::span!("lib.test.off", flag = {
                evaluated = true;
                1usize
            });
        }
        assert!(!evaluated, "fields must not be evaluated when capture is off");

        crate::trace::set_capture(true);
        {
            let _s = crate::span!("lib.test.on", flag = {
                evaluated = true;
                1usize
            });
            crate::event!(error, "lib.test.event");
        }
        crate::trace::set_capture(false);
        assert!(evaluated);
        let records = crate::trace::drain();
        assert!(records.iter().any(|r| r.name == "lib.test.on"));
        let ev = records.iter().find(|r| r.name == "lib.test.event").unwrap();
        assert_eq!(ev.level, crate::trace::Level::Error);
    }
}
