//! A process-global metrics registry: atomic counters, gauges, and
//! power-of-two histograms.
//!
//! Handles are `Arc`s; resolve once (e.g. in a `OnceLock`) on hot paths so
//! the registry lock is only taken at resolution time, never per update.
//! Updates are single relaxed atomic RMWs.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values whose bit length is `i`, i.e. `[2^(i-1), 2^i)`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free histogram over `u64` observations (latencies in ns, token
/// counts, ...) with power-of-two buckets — coarse but constant-size and
/// mergeable, which is all the percentile reporting needs.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into: 0 for 0, otherwise the value's
    /// bit length (so bucket `i` covers `[2^(i-1), 2^i - 1]`).
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `[low, high]` range of values a bucket covers.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Raw bucket counts, `buckets[i]` as defined by [`Self::bucket_index`].
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the first
    /// bucket at which the cumulative count reaches `q · total`, clamped
    /// to the observed min/max. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.bucket_counts().iter().enumerate() {
            cum += b;
            if cum >= rank {
                let (_, high) = Self::bucket_bounds(i);
                return high.clamp(self.min(), self.max());
            }
        }
        self.max()
    }
}

/// A registered metric handle.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// The registry lock, tolerating poisoning (a panicking type-mismatch
/// lookup must not take the whole registry down with it).
fn lock_registry() -> std::sync::MutexGuard<'static, BTreeMap<String, Metric>> {
    registry().lock().unwrap_or_else(|p| p.into_inner())
}

/// Resolves (registering on first use) the counter named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different metric type.
pub fn counter(name: &str) -> Arc<Counter> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
    {
        Metric::Counter(c) => Arc::clone(c),
        _ => panic!("metric `{name}` is registered as a non-counter"),
    }
}

/// Resolves (registering on first use) the gauge named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different metric type.
pub fn gauge(name: &str) -> Arc<Gauge> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
    {
        Metric::Gauge(g) => Arc::clone(g),
        _ => panic!("metric `{name}` is registered as a non-gauge"),
    }
}

/// Resolves (registering on first use) the histogram named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a different metric type.
pub fn histogram(name: &str) -> Arc<Histogram> {
    let mut reg = lock_registry();
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
    {
        Metric::Histogram(h) => Arc::clone(h),
        _ => panic!("metric `{name}` is registered as a non-histogram"),
    }
}

/// A point-in-time copy of one metric's state.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: u64,
        /// Approximate median.
        p50: u64,
        /// Approximate 95th percentile.
        p95: u64,
        /// Largest observation.
        max: u64,
    },
}

/// Snapshots every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricSnapshot)> {
    lock_registry()
        .iter()
        .map(|(name, m)| {
            let snap = match m {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    max: h.max(),
                },
            };
            (name.clone(), snap)
        })
        .collect()
}

/// Removes every registered metric. Handles already resolved keep working
/// but are no longer visible to [`snapshot`] — intended for tests only.
pub fn reset() {
    lock_registry().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_the_bit_length() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(10), (512, 1023));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789, u64::MAX] {
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 202.0).abs() < 1e-9);
        let counts = h.bucket_counts();
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2, 3
        assert_eq!(counts[3], 1); // 4
        assert_eq!(counts[10], 1); // 1000
    }

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 4, 1000] {
            h.record(v);
        }
        // p50 → 3rd of 5 observations → value 3, bucket [2, 3].
        assert_eq!(h.quantile(0.5), 3);
        // p95 → 5th observation → 1000's bucket [512, 1023], clamped to max.
        assert_eq!(h.quantile(0.95), 1000);
        assert_eq!(h.quantile(0.0), 1);
        let empty = Histogram::default();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn concurrent_counter_increments_from_8_threads_lose_nothing() {
        let c = counter("metrics.test.concurrent");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = counter("metrics.test.concurrent");
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn registry_returns_the_same_instance_and_snapshots() {
        let c = counter("metrics.test.same");
        counter("metrics.test.same").add(5);
        assert_eq!(c.get(), 5);
        gauge("metrics.test.gauge").set(-3);
        histogram("metrics.test.hist").record(7);
        let snap = snapshot();
        let get = |n: &str| snap.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
        assert_eq!(
            get("metrics.test.same"),
            Some(MetricSnapshot::Counter(5))
        );
        assert_eq!(get("metrics.test.gauge"), Some(MetricSnapshot::Gauge(-3)));
        match get("metrics.test.hist") {
            Some(MetricSnapshot::Histogram { count: 1, sum: 7, .. }) => {}
            other => panic!("unexpected snapshot {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn type_mismatch_is_rejected() {
        gauge("metrics.test.mismatch").set(1);
        let _ = counter("metrics.test.mismatch");
    }
}
