//! Run-profile summarization: aggregates trace records into per-span
//! statistics and renders the human-readable report the `profile_lodo`
//! tooling prints (top spans by cumulative time, warning events, metrics).

use crate::metrics::{snapshot, MetricSnapshot};
use crate::trace::{Level, RecordKind, TraceRecord};
use std::collections::BTreeMap;

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Number of closed spans with this name.
    pub count: u64,
    /// Sum of durations, ns.
    pub total_ns: u64,
    /// Mean duration, ns.
    pub mean_ns: u64,
    /// Median duration, ns.
    pub p50_ns: u64,
    /// 95th-percentile duration, ns.
    pub p95_ns: u64,
    /// Longest duration, ns.
    pub max_ns: u64,
}

/// Aggregates span records by name, sorted by descending cumulative time.
pub fn span_stats(records: &[TraceRecord]) -> Vec<SpanStat> {
    let mut by_name: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for r in records {
        if r.kind == RecordKind::Span {
            by_name.entry(r.name).or_default().push(r.dur_ns);
        }
    }
    let mut stats: Vec<SpanStat> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            let count = durs.len() as u64;
            let total: u64 = durs.iter().sum();
            let pick = |q: f64| {
                let idx = ((q * (durs.len() - 1) as f64).round() as usize).min(durs.len() - 1);
                durs[idx]
            };
            SpanStat {
                name: name.to_owned(),
                count,
                total_ns: total,
                mean_ns: total / count,
                p50_ns: pick(0.50),
                p95_ns: pick(0.95),
                max_ns: *durs.last().unwrap(),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    stats
}

/// Formats nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Renders the top-`n` spans by cumulative time as an aligned table.
pub fn render_top_spans(records: &[TraceRecord], n: usize) -> String {
    let stats = span_stats(records);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "span", "count", "total", "mean", "p50", "p95", "max"
    ));
    for s in stats.iter().take(n) {
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            s.name,
            s.count,
            fmt_ns(s.total_ns),
            fmt_ns(s.mean_ns),
            fmt_ns(s.p50_ns),
            fmt_ns(s.p95_ns),
            fmt_ns(s.max_ns),
        ));
    }
    if stats.is_empty() {
        out.push_str("  (no spans captured)\n");
    }
    out
}

/// Renders warning/error events (name × count), if any.
pub fn render_warnings(records: &[TraceRecord]) -> String {
    let mut counts: BTreeMap<(&str, Level), u64> = BTreeMap::new();
    for r in records {
        if r.kind == RecordKind::Event && r.level >= Level::Warn {
            *counts.entry((r.name, r.level)).or_default() += 1;
        }
    }
    if counts.is_empty() {
        return String::new();
    }
    let mut out = String::from("warnings:\n");
    for ((name, level), n) in counts {
        out.push_str(&format!("  [{}] {name} ×{n}\n", level.as_str()));
    }
    out
}

/// Renders the current metrics registry.
pub fn render_metrics() -> String {
    let snap = snapshot();
    if snap.is_empty() {
        return String::from("metrics: (none registered)\n");
    }
    let mut out = String::from("metrics:\n");
    for (name, m) in snap {
        match m {
            MetricSnapshot::Counter(v) => out.push_str(&format!("  {name:<40} {v}\n")),
            MetricSnapshot::Gauge(v) => out.push_str(&format!("  {name:<40} {v}\n")),
            MetricSnapshot::Histogram {
                count,
                sum,
                p50,
                p95,
                max,
            } => out.push_str(&format!(
                "  {name:<40} n={count} sum={sum} p50={} p95={} max={}\n",
                fmt_ns(p50),
                fmt_ns(p95),
                fmt_ns(max)
            )),
        }
    }
    out
}

/// The full run-profile summary: top spans, warnings, metrics.
pub fn render_summary(records: &[TraceRecord], top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("top {top} spans by cumulative time:\n"));
    out.push_str(&render_top_spans(records, top));
    let warnings = render_warnings(records);
    if !warnings.is_empty() {
        out.push('\n');
        out.push_str(&warnings);
    }
    out.push('\n');
    out.push_str(&render_metrics());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FieldValue;

    fn span(name: &'static str, dur_ns: u64) -> TraceRecord {
        TraceRecord {
            kind: RecordKind::Span,
            level: Level::Info,
            name,
            thread: 0,
            id: 1,
            parent: 0,
            start_ns: 0,
            dur_ns,
            fields: Vec::new(),
        }
    }

    fn warn_event(name: &'static str) -> TraceRecord {
        TraceRecord {
            kind: RecordKind::Event,
            level: Level::Warn,
            name,
            thread: 0,
            id: 0,
            parent: 0,
            start_ns: 0,
            dur_ns: 0,
            fields: vec![("model", FieldValue::Str("X".into()))],
        }
    }

    #[test]
    fn stats_aggregate_and_rank_by_cumulative_time() {
        let records = vec![
            span("b", 10),
            span("a", 100),
            span("b", 30),
            span("a", 200),
            span("a", 300),
        ];
        let stats = span_stats(&records);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].name, "a");
        assert_eq!(stats[0].count, 3);
        assert_eq!(stats[0].total_ns, 600);
        assert_eq!(stats[0].mean_ns, 200);
        assert_eq!(stats[0].p50_ns, 200);
        assert_eq!(stats[0].max_ns, 300);
        assert_eq!(stats[1].name, "b");
        assert_eq!(stats[1].total_ns, 40);
    }

    #[test]
    fn events_do_not_contribute_to_span_stats() {
        let records = vec![span("a", 10), warn_event("a")];
        let stats = span_stats(&records);
        assert_eq!(stats[0].count, 1);
    }

    #[test]
    fn summary_lists_spans_and_warnings() {
        let records = vec![span("eval.item", 5_000_000), warn_event("cost.row_skipped")];
        let s = render_summary(&records, 10);
        assert!(s.contains("eval.item"));
        assert!(s.contains("cost.row_skipped"));
        assert!(s.contains("[warn]"));
    }

    #[test]
    fn fmt_ns_picks_sane_units() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(50_000), "50.0µs");
        assert_eq!(fmt_ns(50_000_000), "50.0ms");
        assert_eq!(fmt_ns(2_500_000_000), "2.50s");
    }
}
