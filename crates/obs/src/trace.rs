//! Structured tracing: spans, events, per-thread buffers, JSONL export.
//!
//! # Design
//!
//! * **Hot path.** [`capture_enabled`] is a single relaxed atomic load;
//!   when capture is off the [`span!`](crate::span) / [`event!`](crate::event)
//!   macros evaluate none of their field expressions and allocate nothing,
//!   so instrumented code pays ~1 ns per probe.
//! * **Per-thread rings.** When capture is on, finished spans and events
//!   are pushed into a thread-local ring buffer without taking any lock.
//!   A thread drains its ring into the global sink only when the ring
//!   fills or the thread exits, so sink contention is amortized over
//!   [`THREAD_RING_CAPACITY`] records.
//! * **Sink.** The sink retains records in memory (bounded by
//!   [`SINK_RETAIN_CAP`]; overflow increments a drop counter instead of
//!   growing without bound) and, when the `EM_TRACE=path.jsonl`
//!   environment variable is set, streams every drained batch to that file
//!   as JSON lines.
//! * **Span nesting** is tracked per thread: each record carries its span
//!   id and parent span id, and a span's record is emitted when the span
//!   *closes*, so an inner span always appears before its enclosing outer
//!   span in the export.

use crate::json;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Records buffered per thread before a (locking) drain into the sink.
pub const THREAD_RING_CAPACITY: usize = 4096;

/// Maximum records retained in memory by the sink; older runs should
/// export or [`drain`] before hitting this.
pub const SINK_RETAIN_CAP: usize = 1 << 18;

// ---------------------------------------------------------------------------
// record model
// ---------------------------------------------------------------------------

/// Whether a record is a closed span (with a duration) or an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A timed region; `dur_ns` is its wall-clock duration.
    Span,
    /// An instant occurrence; `dur_ns` is zero.
    Event,
}

/// Severity of an event (spans are always `Info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Diagnostic detail.
    Debug,
    /// Normal operation.
    Info,
    /// Something was skipped or degraded but the run continues.
    Warn,
    /// A failure the caller will surface.
    Error,
}

impl Level {
    /// Lower-case name used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point (exported as `null` when non-finite).
    Float(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue { FieldValue::$variant(v as $conv) }
        })*
    };
}

impl_field_from!(
    u8 => UInt as u64, u16 => UInt as u64, u32 => UInt as u64,
    u64 => UInt as u64, usize => UInt as u64,
    i8 => Int as i64, i16 => Int as i64, i32 => Int as i64,
    i64 => Int as i64, isize => Int as i64,
    f32 => Float as f64, f64 => Float as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One exported trace record (a closed span or an instant event).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Span or event.
    pub kind: RecordKind,
    /// Severity (always `Info` for spans).
    pub level: Level,
    /// Static name, e.g. `"eval.item"`.
    pub name: &'static str,
    /// Dense per-process thread index (not the OS thread id).
    pub thread: u64,
    /// Unique span id; 0 for events.
    pub id: u64,
    /// Enclosing span id at emission time; 0 at top level.
    pub parent: u64,
    /// Start offset from the process trace epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for events).
    pub dur_ns: u64,
    /// Structured fields.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"type\":\"");
        out.push_str(match self.kind {
            RecordKind::Span => "span",
            RecordKind::Event => "event",
        });
        out.push_str("\",\"level\":\"");
        out.push_str(self.level.as_str());
        out.push_str("\",\"name\":");
        json::push_escaped(&mut out, self.name);
        out.push_str(&format!(
            ",\"thread\":{},\"id\":{},\"parent\":{},\"start_ns\":{},\"dur_ns\":{}",
            self.thread, self.id, self.parent, self.start_ns, self.dur_ns
        ));
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_escaped(&mut out, k);
            out.push(':');
            match v {
                FieldValue::Int(n) => out.push_str(&format!("{n}")),
                FieldValue::UInt(n) => out.push_str(&format!("{n}")),
                FieldValue::Float(x) => json::push_f64(&mut out, *x),
                FieldValue::Str(s) => json::push_escaped(&mut out, s),
                FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push_str("}}");
        out
    }
}

// ---------------------------------------------------------------------------
// global capture state
// ---------------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_IDX: AtomicU64 = AtomicU64::new(0);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

struct Sink {
    records: Vec<TraceRecord>,
    dropped: u64,
    writer: Option<BufWriter<File>>,
}

fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(Sink {
            records: Vec::new(),
            dropped: 0,
            writer: None,
        })
    })
}

/// Runs the one-time `EM_TRACE` environment probe: sets capture on and
/// installs the JSONL file writer when the variable names a path.
fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        epoch(); // pin the trace epoch as early as possible
        let mut on = false;
        if let Ok(path) = std::env::var("EM_TRACE") {
            if !path.trim().is_empty() {
                on = true;
                if let Some(dir) = std::path::Path::new(&path).parent() {
                    if !dir.as_os_str().is_empty() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                }
                match File::create(&path) {
                    Ok(f) => sink().lock().unwrap().writer = Some(BufWriter::new(f)),
                    Err(e) => eprintln!("em-obs: cannot open EM_TRACE={path}: {e}"),
                }
            }
        }
        // Only transition out of UNINIT; an earlier set_capture() wins.
        let _ = STATE.compare_exchange(
            STATE_UNINIT,
            if on { STATE_ON } else { STATE_OFF },
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    });
}

/// `true` when trace capture is on (first call probes `EM_TRACE`).
#[inline]
pub fn capture_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            init_from_env();
            STATE.load(Ordering::Relaxed) == STATE_ON
        }
    }
}

/// Turns capture on or off programmatically (overrides `EM_TRACE`'s
/// on/off decision; the env-configured file writer, if any, stays
/// installed).
pub fn set_capture(on: bool) {
    init_from_env();
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// per-thread ring
// ---------------------------------------------------------------------------

struct ThreadRing {
    idx: u64,
    buf: Vec<TraceRecord>,
    /// Stack of open span ids on this thread (for parent links).
    stack: Vec<u64>,
}

impl ThreadRing {
    fn new() -> ThreadRing {
        ThreadRing {
            idx: NEXT_THREAD_IDX.fetch_add(1, Ordering::Relaxed),
            buf: Vec::with_capacity(THREAD_RING_CAPACITY),
            stack: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut sink = sink().lock().unwrap();
        if let Some(w) = sink.writer.as_mut() {
            for r in &self.buf {
                let _ = writeln!(w, "{}", r.to_json());
            }
            let _ = w.flush();
        }
        let room = SINK_RETAIN_CAP.saturating_sub(sink.records.len());
        if room < self.buf.len() {
            sink.dropped += (self.buf.len() - room) as u64;
            self.buf.truncate(room);
        }
        sink.records.append(&mut self.buf);
    }

    fn push(&mut self, record: TraceRecord) {
        self.buf.push(record);
        if self.buf.len() >= THREAD_RING_CAPACITY {
            self.flush();
        }
    }
}

impl Drop for ThreadRing {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static RING: RefCell<ThreadRing> = RefCell::new(ThreadRing::new());
}

/// Runs `f` with the current thread's ring; silently no-ops during TLS
/// teardown (a span closing inside another thread-local's destructor).
fn with_ring<R>(f: impl FnOnce(&mut ThreadRing) -> R) -> Option<R> {
    RING.try_with(|ring| f(&mut ring.borrow_mut())).ok()
}

// ---------------------------------------------------------------------------
// spans and events
// ---------------------------------------------------------------------------

/// RAII guard for a span: records the span (with its duration) when
/// dropped. Construct through the [`span!`](crate::span) macro.
#[must_use = "a span guard measures until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    active: bool,
    id: u64,
    parent: u64,
    name: &'static str,
    start: Option<Instant>,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

impl SpanGuard {
    /// Opens a span now. Assumes capture was checked by the caller (the
    /// macro); records even if capture is later disabled mid-span.
    pub fn new(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = with_ring(|ring| {
            let parent = ring.stack.last().copied().unwrap_or(0);
            ring.stack.push(id);
            parent
        })
        .unwrap_or(0);
        let now = Instant::now();
        SpanGuard {
            active: true,
            id,
            parent,
            name,
            start: Some(now),
            start_ns: now.duration_since(epoch()).as_nanos() as u64,
            fields,
        }
    }

    /// A no-op guard for when capture is off.
    pub fn disabled() -> SpanGuard {
        SpanGuard {
            active: false,
            id: 0,
            parent: 0,
            name: "",
            start: None,
            start_ns: 0,
            fields: Vec::new(),
        }
    }

    /// The span's unique id (0 for a disabled guard).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_ns = self
            .start
            .map(|s| s.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        let (id, parent, name) = (self.id, self.parent, self.name);
        let (start_ns, fields) = (self.start_ns, std::mem::take(&mut self.fields));
        with_ring(|ring| {
            // Pop this span from the open stack (it is the top unless a
            // guard was dropped out of order; then remove it wherever it
            // is, keeping the stack consistent).
            if ring.stack.last() == Some(&id) {
                ring.stack.pop();
            } else if let Some(pos) = ring.stack.iter().rposition(|&s| s == id) {
                ring.stack.remove(pos);
            }
            ring.push(TraceRecord {
                kind: RecordKind::Span,
                level: Level::Info,
                name,
                thread: ring.idx,
                id,
                parent,
                start_ns,
                dur_ns,
                fields,
            });
        });
    }
}

/// Emits an instant event under the current thread's open span. Use the
/// [`event!`](crate::event) macro, which skips all work when capture is off.
pub fn emit_event(level: Level, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    let start_ns = Instant::now().duration_since(epoch()).as_nanos() as u64;
    with_ring(|ring| {
        let parent = ring.stack.last().copied().unwrap_or(0);
        ring.push(TraceRecord {
            kind: RecordKind::Event,
            level,
            name,
            thread: ring.idx,
            id: 0,
            parent,
            start_ns,
            dur_ns: 0,
            fields,
        });
    });
}

// ---------------------------------------------------------------------------
// draining and export
// ---------------------------------------------------------------------------

/// Drains the calling thread's ring into the sink (worker threads flush
/// automatically on exit; call this on the main thread before exporting).
pub fn flush_current_thread() {
    with_ring(|ring| ring.flush());
}

/// Flushes the calling thread and takes every retained record out of the
/// sink. Records buffered on *other live* threads are not included until
/// those threads flush (they do so on exit or when their ring fills).
pub fn drain() -> Vec<TraceRecord> {
    flush_current_thread();
    std::mem::take(&mut sink().lock().unwrap().records)
}

/// Number of records discarded because the sink retention cap was hit.
pub fn dropped_records() -> u64 {
    sink().lock().unwrap().dropped
}

/// Writes records to `path` as JSON lines (one object per record).
pub fn write_jsonl(path: &str, records: &[TraceRecord]) -> std::io::Result<()> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    for r in records {
        writeln!(w, "{}", r.to_json())?;
    }
    w.flush()
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // Capture state is process-global; tests that toggle it serialize here.
    pub(crate) static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_capture_records_nothing() {
        let _g = locked();
        set_capture(false);
        let _ = drain();
        {
            let _s = crate::span!("trace.test.off", a = 1);
            crate::event!(warn, "trace.test.off_event");
        }
        assert!(!drain().iter().any(|r| r.name.starts_with("trace.test.off")));
    }

    #[test]
    fn span_nesting_links_parent_and_exports_inner_first() {
        let _g = locked();
        set_capture(true);
        let _ = drain();
        {
            let _outer = crate::span!("trace.test.outer", label = "o");
            {
                let _inner = crate::span!("trace.test.inner");
                crate::event!(info, "trace.test.tick", n = 3usize);
            }
        }
        set_capture(false);
        let records = drain();
        let inner_pos = records
            .iter()
            .position(|r| r.name == "trace.test.inner")
            .expect("inner span recorded");
        let outer_pos = records
            .iter()
            .position(|r| r.name == "trace.test.outer")
            .expect("outer span recorded");
        assert!(inner_pos < outer_pos, "inner span must close (export) first");
        let outer = &records[outer_pos];
        let inner = &records[inner_pos];
        assert_eq!(inner.parent, outer.id, "inner's parent is the outer span");
        assert_eq!(outer.parent, 0);
        let event = records
            .iter()
            .find(|r| r.name == "trace.test.tick")
            .expect("event recorded");
        assert_eq!(event.kind, RecordKind::Event);
        assert_eq!(event.parent, inner.id, "event nests under the inner span");
        assert_eq!(
            event.fields,
            vec![("n", FieldValue::UInt(3))],
            "event fields survive"
        );
        assert!(outer.dur_ns >= inner.dur_ns, "outer encloses inner");
    }

    #[test]
    fn jsonl_export_is_one_valid_object_per_line() {
        let _g = locked();
        set_capture(true);
        let _ = drain();
        {
            let _s = crate::span!("trace.test.json", text = "a \"quoted\"\nline", x = 1.5);
        }
        set_capture(false);
        let records: Vec<TraceRecord> = drain()
            .into_iter()
            .filter(|r| r.name == "trace.test.json")
            .collect();
        assert_eq!(records.len(), 1);
        let line = records[0].to_json();
        assert!(line.starts_with("{\"type\":\"span\""));
        assert!(line.contains("\"name\":\"trace.test.json\""));
        assert!(line.contains("\\\"quoted\\\"\\nline"));
        assert!(line.contains("\"x\":1.5"));
        assert!(!line.contains('\n'), "one record stays on one line");
        let dir = std::env::temp_dir().join("em_obs_test_export");
        let path = dir.join("trace.jsonl").to_string_lossy().into_owned();
        write_jsonl(&path, &records).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content.lines().count(), 1);
        assert_eq!(content.lines().next().unwrap(), line);
    }

    #[test]
    fn worker_thread_records_flush_on_thread_exit() {
        let _g = locked();
        set_capture(true);
        let _ = drain();
        std::thread::spawn(|| {
            let _s = crate::span!("trace.test.worker");
        })
        .join()
        .unwrap();
        set_capture(false);
        let records = drain();
        let worker: Vec<_> = records
            .iter()
            .filter(|r| r.name == "trace.test.worker")
            .collect();
        assert_eq!(worker.len(), 1, "thread exit flushed its ring");
    }

    #[test]
    fn field_value_conversions_cover_the_primitives() {
        assert_eq!(FieldValue::from(3usize), FieldValue::UInt(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::Int(-3));
        assert_eq!(FieldValue::from(1.5f32), FieldValue::Float(1.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("s"), FieldValue::Str("s".into()));
        assert_eq!(
            FieldValue::from(String::from("t")),
            FieldValue::Str("t".into())
        );
    }
}
