//! # em-perturb — deterministic record & serialization perturbations
//!
//! The perturbation-robustness layer behind the `sensitivity` harness: a
//! small algebra of seeded, bitwise-reproducible record corruptions and
//! serialization ablations that quantify how every matcher family degrades
//! when the input format drifts away from the clean benchmark form.
//!
//! Two kinds of operators implement the [`Perturbation`] trait:
//!
//! * **record-level** operators mutate attribute values —
//!   [`Misfield`] (values rotated into wrong attribute slots),
//!   [`Embed`] (per-record random attribute subsets emulating
//!   semi-structured DBpedia-style records), [`NullOut`],
//!   [`Typo`] and [`DropToken`] (built on the
//!   [`em_datagen::corrupt`] primitives);
//! * **serializer-level** operators change how records render —
//!   [`AttrShuffle`] (column-order shuffle) and [`NameValue`]
//!   (`name: value` rendering instead of bare values).
//!
//! # Determinism contract
//!
//! Every operator draws randomness from a [`rand::rngs::StdRng`] seeded
//! per `(plan seed, operator index, record id)`. Perturbing the same
//! record under the same [`PerturbPlan`] therefore yields bitwise
//! identical output **regardless of the order or number of other records
//! processed**, across threads and across runs. The proptest suite in
//! `tests/determinism.rs` pins this contract.
//!
//! Application is observable through `perturb.*` counters
//! (`perturb.records`, `perturb.values_misfielded`,
//! `perturb.values_nulled`, `perturb.embed_dropped`, `perturb.typos`,
//! `perturb.tokens_dropped`) in the [`em_obs::metrics`] registry.

pub mod op;
pub mod plan;

pub use op::{AttrShuffle, DropToken, Embed, Misfield, NameValue, NullOut, Perturbation, Typo};
pub use plan::{standard_suite, PerturbPlan};
