//! The [`Perturbation`] trait and the standard operators.
//!
//! Record-level operators mutate a [`Record`] in place under a caller-
//! provided RNG (the plan derives one per `(seed, op, record)`, see
//! [`crate::plan`]); serializer-level operators rewrite the
//! [`Serializer`] every record of the batch is rendered with. One
//! operator may do both, and defaults exist for either side so an
//! implementation only writes the half it needs.

use em_core::record::{AttrValue, Record};
use em_core::serialize::Serializer;
use em_datagen::corrupt;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// One seeded, bitwise-reproducible perturbation operator.
///
/// Operators must be pure functions of `(record, rng)` respectively
/// `(arity, base, plan_seed)` — no interior mutability, no global state
/// beyond the `perturb.*` counters — so that a [`crate::PerturbPlan`]
/// can guarantee its determinism contract.
pub trait Perturbation: Send + Sync {
    /// Stable operator name (used in counter attribution and reports).
    fn name(&self) -> &'static str;

    /// Mutates the record's attribute values in place. Record-level
    /// operators override this; the default leaves the record untouched.
    fn apply(&self, _record: &mut Record, _rng: &mut StdRng) {}

    /// Rewrites the serializer the perturbed batch is rendered with.
    /// Serializer-level operators override this; the default passes the
    /// base through so operators compose left to right.
    fn serializer(&self, _arity: usize, base: Serializer, _plan_seed: u64) -> Serializer {
        base
    }
}

/// SplitMix64 finalizer — the mixing function behind per-record RNG
/// derivation and serializer-seed derivation.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Column-order shuffle: renders the same values under a seed-derived
/// permutation instead of schema order (serializer-level; the records
/// themselves are untouched).
pub struct AttrShuffle;

impl Perturbation for AttrShuffle {
    fn name(&self) -> &'static str {
        "attr-shuffle"
    }

    fn serializer(&self, arity: usize, base: Serializer, plan_seed: u64) -> Serializer {
        // `Serializer::shuffled(_, 0)` is defined as the identity, so force
        // a nonzero derived seed to guarantee an actual shuffle attempt.
        let shuffled = Serializer::shuffled(arity, mix(plan_seed) | 1);
        match base.names() {
            Some(names) => shuffled.with_names(names.to_vec()),
            None => shuffled,
        }
    }
}

/// `name: value` rendering: includes the schema attribute names the
/// cross-dataset restriction normally erases (serializer-level).
pub struct NameValue {
    names: Vec<String>,
}

impl NameValue {
    /// Creates the operator with the schema names to render.
    pub fn new(names: Vec<String>) -> Self {
        NameValue { names }
    }
}

impl Perturbation for NameValue {
    fn name(&self) -> &'static str {
        "name-value"
    }

    fn serializer(&self, _arity: usize, base: Serializer, _plan_seed: u64) -> Serializer {
        base.with_names(self.names.clone())
    }
}

/// `misfield-k`: cyclically rotates the values of `k` random attribute
/// slots, so values appear under the wrong attribute position (and, when
/// combined with [`NameValue`], under the wrong attribute *name*).
pub struct Misfield {
    /// Number of attribute slots whose values rotate (clamped to arity).
    pub k: usize,
}

impl Perturbation for Misfield {
    fn name(&self) -> &'static str {
        "misfield"
    }

    fn apply(&self, record: &mut Record, rng: &mut StdRng) {
        let arity = record.arity();
        if arity < 2 || self.k < 2 {
            return;
        }
        let k = self.k.min(arity);
        let mut idx: Vec<usize> = (0..arity).collect();
        idx.shuffle(rng);
        idx.truncate(k);
        let last = record.values[idx[k - 1]].clone();
        for w in (1..k).rev() {
            record.values[idx[w]] = record.values[idx[w - 1]].clone();
        }
        record.values[idx[0]] = last;
        em_obs::metrics::counter("perturb.values_misfielded").add(k as u64);
    }
}

/// `embed-k`: keeps a per-record random subset of `keep` attributes and
/// blanks the rest — every record exposes a different attribute subset,
/// emulating semi-structured sources where no two entities share a
/// schema.
pub struct Embed {
    /// Number of attributes each record keeps (clamped to arity).
    pub keep: usize,
}

impl Perturbation for Embed {
    fn name(&self) -> &'static str {
        "embed"
    }

    fn apply(&self, record: &mut Record, rng: &mut StdRng) {
        let arity = record.arity();
        if self.keep >= arity {
            return;
        }
        let mut idx: Vec<usize> = (0..arity).collect();
        idx.shuffle(rng);
        let mut dropped = 0u64;
        for &i in &idx[self.keep..] {
            if !record.values[i].is_missing() {
                record.values[i] = AttrValue::Missing;
                dropped += 1;
            }
        }
        em_obs::metrics::counter("perturb.embed_dropped").add(dropped);
    }
}

/// `null-k`: blanks `k` random attributes per record — plain missing-
/// value injection at a fixed per-record budget.
pub struct NullOut {
    /// Number of attributes to blank (clamped to arity).
    pub k: usize,
}

impl Perturbation for NullOut {
    fn name(&self) -> &'static str {
        "null-out"
    }

    fn apply(&self, record: &mut Record, rng: &mut StdRng) {
        let arity = record.arity();
        if arity == 0 || self.k == 0 {
            return;
        }
        let k = self.k.min(arity);
        let mut idx: Vec<usize> = (0..arity).collect();
        idx.shuffle(rng);
        let mut nulled = 0u64;
        for &i in &idx[..k] {
            if !record.values[i].is_missing() {
                record.values[i] = AttrValue::Missing;
                nulled += 1;
            }
        }
        em_obs::metrics::counter("perturb.values_nulled").add(nulled);
    }
}

/// Character-level typo noise: applies `passes` typo passes
/// ([`em_datagen::corrupt::typo`] — swap/delete/duplicate) to every text
/// attribute.
pub struct Typo {
    /// Typo passes per text value.
    pub passes: usize,
}

impl Perturbation for Typo {
    fn name(&self) -> &'static str {
        "typo"
    }

    fn apply(&self, record: &mut Record, rng: &mut StdRng) {
        let mut applied = 0u64;
        for v in &mut record.values {
            if let AttrValue::Text(s) = v {
                let mut out = s.clone();
                for _ in 0..self.passes {
                    out = corrupt::typo(&out, rng);
                }
                if out != *s {
                    applied += 1;
                    *s = out;
                }
            }
        }
        em_obs::metrics::counter("perturb.typos").add(applied);
    }
}

/// Token-drop noise: removes one random word token from every multi-token
/// text attribute ([`em_datagen::corrupt::drop_token`]).
pub struct DropToken;

impl Perturbation for DropToken {
    fn name(&self) -> &'static str {
        "drop-token"
    }

    fn apply(&self, record: &mut Record, rng: &mut StdRng) {
        let mut dropped = 0u64;
        for v in &mut record.values {
            if let AttrValue::Text(s) = v {
                let out = corrupt::drop_token(s, rng);
                if out != *s {
                    dropped += 1;
                    *s = out;
                }
            }
        }
        em_obs::metrics::counter("perturb.tokens_dropped").add(dropped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn values_multiset(r: &Record) -> Vec<String> {
        let mut v: Vec<String> = r.values.iter().map(|a| a.render()).collect();
        v.sort();
        v
    }

    fn rec(vals: &[&str]) -> Record {
        Record::new(7, vals.iter().map(|v| AttrValue::from(*v)).collect())
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn misfield_preserves_value_multiset_and_moves_values() {
        let clean = rec(&["alpha", "beta", "gamma", "delta"]);
        let mut moved = 0;
        for seed in 0..10 {
            let mut r = clean.clone();
            Misfield { k: 2 }.apply(&mut r, &mut rng(seed));
            assert_eq!(values_multiset(&r), values_multiset(&clean));
            if r != clean {
                moved += 1;
            }
        }
        assert!(
            moved >= 8,
            "misfield-2 moved values in only {moved}/10 seeds"
        );
    }

    #[test]
    fn misfield_ignores_degenerate_records() {
        let mut empty = Record::new(1, vec![]);
        Misfield { k: 2 }.apply(&mut empty, &mut rng(0));
        assert_eq!(empty.values.len(), 0);
        let mut single = rec(&["only"]);
        Misfield { k: 2 }.apply(&mut single, &mut rng(0));
        assert_eq!(single, rec(&["only"]));
    }

    #[test]
    fn embed_keeps_exactly_the_budget() {
        let mut r = rec(&["a", "b", "c", "d", "e"]);
        Embed { keep: 2 }.apply(&mut r, &mut rng(3));
        let present = r.values.iter().filter(|v| !v.is_missing()).count();
        assert_eq!(present, 2);
    }

    #[test]
    fn embed_with_large_budget_is_identity() {
        let clean = rec(&["a", "b"]);
        let mut r = clean.clone();
        Embed { keep: 5 }.apply(&mut r, &mut rng(0));
        assert_eq!(r, clean);
    }

    #[test]
    fn null_out_blanks_k_values() {
        let mut r = rec(&["a", "b", "c"]);
        NullOut { k: 1 }.apply(&mut r, &mut rng(1));
        assert_eq!(r.values.iter().filter(|v| v.is_missing()).count(), 1);
        let mut all = rec(&["a", "b"]);
        NullOut { k: 9 }.apply(&mut all, &mut rng(1));
        assert!(all.values.iter().all(|v| v.is_missing()));
    }

    #[test]
    fn typo_touches_only_text() {
        let mut r = Record::new(
            2,
            vec![AttrValue::from("television set"), AttrValue::Number(99.0)],
        );
        Typo { passes: 2 }.apply(&mut r, &mut rng(5));
        assert_eq!(r.values[1], AttrValue::Number(99.0));
    }

    #[test]
    fn drop_token_keeps_single_token_values() {
        let clean = rec(&["single", "two tokens"]);
        let mut r = clean.clone();
        DropToken.apply(&mut r, &mut rng(4));
        assert_eq!(r.values[0], AttrValue::from("single"));
        assert_eq!(r.values[1].render().split_whitespace().count(), 1);
    }

    #[test]
    fn attr_shuffle_rewrites_order_and_keeps_names() {
        let base = Serializer::identity(6).with_names((0..6).map(|i| format!("c{i}")).collect());
        let shuffled = AttrShuffle.serializer(6, base, 42);
        assert_ne!(shuffled.order(), Serializer::identity(6).order());
        assert!(shuffled.names().is_some());
    }

    #[test]
    fn name_value_sets_names() {
        let out = NameValue::new(vec!["t".into()]).serializer(1, Serializer::identity(1), 0);
        assert_eq!(out.names(), Some(&["t".to_string()][..]));
    }
}
