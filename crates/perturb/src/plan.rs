//! Perturbation plans: named, seeded compositions of operators.
//!
//! A [`PerturbPlan`] owns an ordered list of [`Perturbation`] operators
//! and a seed, and is the unit the sensitivity harness sweeps: one plan =
//! one column of the matcher × perturbation matrix. The plan derives an
//! independent RNG per `(seed, operator index, record id)` — see the
//! determinism contract in the crate docs — so perturbing a record is a
//! pure function of the plan and the record, no matter how the batch is
//! chunked across worker threads.

use crate::op::{
    mix, AttrShuffle, DropToken, Embed, Misfield, NameValue, NullOut, Perturbation, Typo,
};
use em_core::matcher::EvalBatch;
use em_core::pair::{LabeledPair, RecordPair};
use em_core::record::{AttrType, Record};
use em_core::serialize::Serializer;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A named, seeded composition of perturbation operators.
pub struct PerturbPlan {
    name: String,
    seed: u64,
    ops: Vec<Box<dyn Perturbation>>,
}

impl PerturbPlan {
    /// Creates an empty (identity) plan. With no operators the plan is
    /// the `clean` baseline: records pass through untouched and the
    /// serializer is the identity.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        PerturbPlan {
            name: name.into(),
            seed,
            ops: Vec::new(),
        }
    }

    /// Appends an operator (builder style). Operators apply in insertion
    /// order, both at the record level and when folding the serializer.
    pub fn with(mut self, op: Box<dyn Perturbation>) -> Self {
        self.ops.push(op);
        self
    }

    /// The plan's name — the column label in `SENSITIVITY.json`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `true` if the plan has no operators (the clean baseline).
    pub fn is_clean(&self) -> bool {
        self.ops.is_empty()
    }

    /// Perturbs one record: clones it and runs every operator with its
    /// derived per-`(seed, op, record)` RNG. Bitwise deterministic and
    /// independent of any other record processed before or after.
    pub fn record(&self, record: &Record) -> Record {
        em_obs::metrics::counter("perturb.records").inc();
        let mut out = record.clone();
        for (op_index, op) in self.ops.iter().enumerate() {
            let mut rng = self.record_rng(op_index, record.id);
            op.apply(&mut out, &mut rng);
        }
        out
    }

    /// Perturbs both sides of a pair (each record under its own RNG).
    pub fn pair(&self, pair: &RecordPair) -> RecordPair {
        RecordPair::new(self.record(&pair.left), self.record(&pair.right))
    }

    /// The serializer the perturbed batch renders with: the identity
    /// folded through every operator's serializer hook.
    pub fn serializer(&self, arity: usize) -> Serializer {
        let mut ser = Serializer::identity(arity);
        for op in &self.ops {
            ser = op.serializer(arity, ser, self.seed);
        }
        ser
    }

    /// Builds a full [`EvalBatch`] from labelled pairs: records perturbed
    /// per the plan, then serialized under the plan's serializer. Labels
    /// stay with the caller's `pairs` slice (perturbations never change
    /// ground truth — the records still refer to the same entities).
    pub fn eval_batch(&self, pairs: &[LabeledPair], attr_types: &[AttrType]) -> EvalBatch {
        let arity = attr_types.len();
        let ser = self.serializer(arity);
        let raw: Vec<RecordPair> = pairs.iter().map(|lp| self.pair(&lp.pair)).collect();
        let serialized = ser.pairs(&raw);
        EvalBatch {
            serialized,
            raw,
            attr_types: attr_types.to_vec(),
        }
    }

    fn record_rng(&self, op_index: usize, record_id: u64) -> StdRng {
        let h = mix(self.seed ^ mix((op_index as u64) ^ mix(record_id)));
        StdRng::seed_from_u64(h)
    }
}

/// The standard perturbation suite swept by the sensitivity harness:
/// seven named plans covering both serialization ablations and data-error
/// injection. `names` is the schema used by the `name-value` ablation.
pub fn standard_suite(seed: u64, names: &[String]) -> Vec<PerturbPlan> {
    vec![
        PerturbPlan::new("attr-shuffle", seed).with(Box::new(AttrShuffle)),
        PerturbPlan::new("name-value", seed).with(Box::new(NameValue::new(names.to_vec()))),
        PerturbPlan::new("misfield-2", seed).with(Box::new(Misfield { k: 2 })),
        PerturbPlan::new("embed-2", seed).with(Box::new(Embed { keep: 2 })),
        PerturbPlan::new("null-1", seed).with(Box::new(NullOut { k: 1 })),
        PerturbPlan::new("typo-2", seed).with(Box::new(Typo { passes: 2 })),
        PerturbPlan::new("drop-token", seed).with(Box::new(DropToken)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::record::AttrValue;

    fn rec(id: u64, vals: &[&str]) -> Record {
        Record::new(id, vals.iter().map(|v| AttrValue::from(*v)).collect())
    }

    fn schema() -> Vec<String> {
        vec!["title".into(), "category".into(), "price".into()]
    }

    #[test]
    fn clean_plan_is_identity() {
        let plan = PerturbPlan::new("clean", 3);
        assert!(plan.is_clean());
        let r = rec(9, &["digital camera kit", "electronics", "149"]);
        assert_eq!(plan.record(&r), r);
        assert_eq!(
            plan.serializer(3).fingerprint(),
            Serializer::identity(3).fingerprint()
        );
    }

    #[test]
    fn record_is_order_independent() {
        let plan = PerturbPlan::new("t", 11).with(Box::new(Typo { passes: 2 }));
        let a = rec(1, &["first record title here", "cat", "10"]);
        let b = rec(2, &["second record title here", "dog", "20"]);
        // a-then-b must equal b-then-a per record.
        let (a1, b1) = (plan.record(&a), plan.record(&b));
        let (b2, a2) = (plan.record(&b), plan.record(&a));
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn different_records_draw_different_noise() {
        let plan = PerturbPlan::new("t", 5).with(Box::new(NullOut { k: 1 }));
        // Same values, different ids: the nulled column should differ for
        // at least one id pair out of several (independent per-record RNG).
        let vals = ["alpha", "beta", "gamma", "delta", "epsilon"];
        let outs: Vec<Record> = (0..8).map(|id| plan.record(&rec(id, &vals))).collect();
        let first_null = |r: &Record| r.values.iter().position(|v| v.is_missing());
        let distinct: std::collections::HashSet<_> = outs.iter().map(first_null).collect();
        assert!(distinct.len() > 1, "all records nulled the same column");
    }

    #[test]
    fn eval_batch_serializes_under_the_plan() {
        let pairs = vec![LabeledPair::new(
            rec(1, &["tv", "electronics", "99"]),
            rec(2, &["tv set", "electronics", "98"]),
            true,
        )];
        let types = vec![AttrType::ShortText; 3];
        let plan = PerturbPlan::new("name-value", 0).with(Box::new(NameValue::new(schema())));
        let batch = plan.eval_batch(&pairs, &types);
        assert_eq!(batch.len(), 1);
        assert!(batch.serialized[0].left.starts_with("title: "));
        assert_eq!(batch.raw[0].left, pairs[0].pair.left);
    }

    #[test]
    fn standard_suite_names_are_unique_and_cover_the_matrix() {
        let suite = standard_suite(0, &schema());
        assert!(suite.len() >= 5, "matrix needs >= 5 perturbations");
        let names: std::collections::HashSet<&str> = suite.iter().map(|p| p.name()).collect();
        assert_eq!(names.len(), suite.len());
        assert!(!suite.iter().any(|p| p.is_clean()));
    }

    #[test]
    fn suite_plans_change_something() {
        // Every plan must have an observable effect on a generic record
        // batch: either the rendered strings differ from clean, or some
        // record's values differ.
        let pairs = vec![
            LabeledPair::new(
                rec(1, &["canon eos camera body", "electronics", "450"]),
                rec(2, &["canon eos camera", "electronics", "455"]),
                true,
            ),
            LabeledPair::new(
                rec(3, &["blue cotton shirt large", "apparel", "25"]),
                rec(4, &["red wool sweater medium", "apparel", "40"]),
                false,
            ),
        ];
        let types = vec![AttrType::ShortText; 3];
        let clean = PerturbPlan::new("clean", 7).eval_batch(&pairs, &types);
        for plan in standard_suite(7, &schema()) {
            let batch = plan.eval_batch(&pairs, &types);
            let differs = batch
                .serialized
                .iter()
                .zip(&clean.serialized)
                .any(|(p, c)| p.left != c.left || p.right != c.right);
            assert!(differs, "plan `{}` had no effect", plan.name());
        }
    }
}
