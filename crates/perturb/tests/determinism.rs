//! Proptest pin of the em-perturb determinism contract: every operator is
//! bitwise-reproducible given `(seed, config)` — the same plan applied to
//! the same record yields identical output across calls, across batch
//! orderings, and across chunked parallel application — and the plan's
//! serializer is a pure function of `(seed, config)` too.

use em_core::record::{AttrValue, Record};
use em_core::run_chunks;
use em_perturb::{standard_suite, DropToken, Misfield, NullOut, PerturbPlan, Typo};
use proptest::prelude::*;

fn schema() -> Vec<String> {
    vec!["title".into(), "category".into(), "price".into()]
}

fn record(id: u64, title: &str, category: &str, price: f64) -> Record {
    Record::new(
        id,
        vec![
            AttrValue::from(title),
            AttrValue::from(category),
            AttrValue::Number(price),
        ],
    )
}

/// Bitwise equality for records: `PartialEq` on `AttrValue::Number`
/// compares f64 by value, which is bit-equality for the non-NaN payloads
/// the generator produces; text compares byte-for-byte.
fn assert_same(a: &Record, b: &Record) {
    assert_eq!(a, b);
}

proptest! {
    #[test]
    fn every_suite_plan_is_reproducible(
        seed in 0u64..1000,
        id in 0u64..1_000_000,
        title in "[a-z ]{0,30}",
        category in "[a-z]{0,10}",
        price in 0.0f64..10_000.0,
    ) {
        let r = record(id, &title, &category, price);
        for plan in standard_suite(seed, &schema()) {
            assert_same(&plan.record(&r), &plan.record(&r));
            prop_assert_eq!(
                plan.serializer(3).fingerprint(),
                plan.serializer(3).fingerprint()
            );
        }
    }

    #[test]
    fn rebuilt_plans_agree(seed in 0u64..1000, id in 0u64..1_000_000, title in "[a-z ]{0,30}") {
        // Two independently constructed plans with the same (seed, config)
        // are interchangeable — nothing hides in construction order.
        let r = record(id, &title, "cat", 42.0);
        let a = standard_suite(seed, &schema());
        let b = standard_suite(seed, &schema());
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert_eq!(pa.name(), pb.name());
            assert_same(&pa.record(&r), &pb.record(&r));
            prop_assert_eq!(pa.serializer(3).fingerprint(), pb.serializer(3).fingerprint());
        }
    }

    #[test]
    fn batch_order_does_not_leak_between_records(
        seed in 0u64..500,
        titles in proptest::collection::vec("[a-z ]{1,25}", 6),
    ) {
        let records: Vec<Record> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| record(i as u64, t, "cat", i as f64))
            .collect();
        let plan = PerturbPlan::new("composite", seed)
            .with(Box::new(Typo { passes: 1 }))
            .with(Box::new(NullOut { k: 1 }));
        let forward: Vec<Record> = records.iter().map(|r| plan.record(r)).collect();
        let backward: Vec<Record> = records.iter().rev().map(|r| plan.record(r)).collect();
        for (f, b) in forward.iter().zip(backward.iter().rev()) {
            assert_same(f, b);
        }
    }

    #[test]
    fn chunked_parallel_application_matches_serial(
        seed in 0u64..200,
        titles in proptest::collection::vec("[a-z ]{1,20}", 8),
    ) {
        let records: Vec<Record> = titles
            .iter()
            .enumerate()
            .map(|(i, t)| record(i as u64, t, "cat", 1.0))
            .collect();
        let plan = PerturbPlan::new("par", seed)
            .with(Box::new(Misfield { k: 2 }))
            .with(Box::new(DropToken));
        let serial: Vec<Record> = records.iter().map(|r| plan.record(r)).collect();
        let parallel = run_chunks(&records, |r| plan.record(r)).unwrap();
        for (s, p) in serial.iter().zip(&parallel) {
            assert_same(s, p);
        }
    }

    #[test]
    fn different_seeds_usually_perturb_differently(id in 0u64..100_000) {
        // Not a determinism property per se, but pins that the seed is
        // actually wired through: across several seeds, null-out must not
        // always blank the same column.
        let r = record(id, "one two three four", "category", 9.0);
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..8u64 {
            let plan = PerturbPlan::new("n", seed).with(Box::new(NullOut { k: 1 }));
            let out = plan.record(&r);
            distinct.insert(out.values.iter().position(|v| v.is_missing()));
        }
        prop_assert!(distinct.len() > 1);
    }
}
