//! Pair-keyed score cache.
//!
//! Serving workloads revisit pairs: re-ingested catalogs, overlapping
//! blocker outputs, repeated queries. The cache stores the raw `f32`
//! score per `(stage, left_id, right_id)` so a revisit returns the
//! bitwise-identical score without touching the matcher — per stage,
//! because each cascade stage has its own score surface and a cheap
//! stage's cached score must never masquerade as an expensive one's.

use std::collections::HashMap;

/// Pair-keyed, stage-scoped score cache. Keys are record *ids* (not
/// positions), so a cache outlives reorderings of the stores.
#[derive(Debug, Default)]
pub struct ScoreCache {
    map: HashMap<(u32, u64, u64), f32>,
}

impl ScoreCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached score for a pair at a stage, if present.
    pub fn get(&self, stage: u32, left_id: u64, right_id: u64) -> Option<f32> {
        self.map.get(&(stage, left_id, right_id)).copied()
    }

    /// Stores a score (last write wins).
    pub fn insert(&mut self, stage: u32, left_id: u64, right_id: u64, score: f32) {
        self.map.insert((stage, left_id, right_id), score);
    }

    /// Number of cached entries across all stages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bitwise() {
        let mut c = ScoreCache::new();
        let score = 0.123_456_79_f32;
        c.insert(1, 10, 20, score);
        let got = c.get(1, 10, 20).unwrap();
        assert_eq!(got.to_bits(), score.to_bits());
    }

    #[test]
    fn stages_are_isolated() {
        let mut c = ScoreCache::new();
        c.insert(0, 1, 2, 0.9);
        assert_eq!(c.get(1, 1, 2), None);
        assert_eq!(c.get(0, 2, 1), None);
        assert_eq!(c.get(0, 1, 2), Some(0.9));
    }

    #[test]
    fn clear_empties() {
        let mut c = ScoreCache::new();
        c.insert(0, 1, 2, 0.5);
        c.clear();
        assert!(c.is_empty());
    }
}
