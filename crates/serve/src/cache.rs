//! Pair-keyed score cache.
//!
//! Serving workloads revisit pairs: re-ingested catalogs, overlapping
//! blocker outputs, repeated queries. The cache stores the raw `f32`
//! score per `(ctx, stage, left_id, right_id)` so a revisit returns the
//! bitwise-identical score without touching the matcher — per stage,
//! because each cascade stage has its own score surface and a cheap
//! stage's cached score must never masquerade as an expensive one's, and
//! per *context*, because a matcher's score depends on how the records
//! were rendered: the pipeline passes the stores' serializer
//! fingerprints as `ctx`, so re-serving the same ids under a different
//! `Serializer` (column shuffle, `name: value` ablation) can never
//! replay scores computed under the old serialization.
//!
//! The cache can be bounded: with a capacity set, insertion past the
//! bound evicts the oldest-inserted entry (FIFO). FIFO rather than LRU
//! keeps `get` a shared-reference read, which is what lets the pipeline
//! probe the cache from parallel workers. As long as a run's working set
//! fits within the capacity, warm runs remain bitwise-identical to cold
//! ones; evictions only ever cost re-scoring, never wrong answers.

use std::collections::{HashMap, VecDeque};

type Key = (u64, u32, u64, u64);

/// Pair-keyed, stage-scoped score cache. Keys are record *ids* (not
/// positions), so a cache outlives reorderings of the stores.
#[derive(Debug, Default)]
pub struct ScoreCache {
    map: HashMap<Key, f32>,
    /// Insertion order, oldest at the front; maintained only when bounded.
    order: VecDeque<Key>,
    capacity: Option<usize>,
    evicted: u64,
}

impl ScoreCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` entries; the oldest
    /// insertion is evicted first. `capacity` must be positive.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ScoreCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: Some(capacity),
            evicted: 0,
        }
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Entries evicted over the cache's lifetime.
    pub fn evictions(&self) -> u64 {
        self.evicted
    }

    /// Cached score for a pair at a stage under a serialization context,
    /// if present. `ctx` is whatever fingerprint the caller renders pairs
    /// under (the pipeline combines both stores' serializer fingerprints).
    pub fn get(&self, ctx: u64, stage: u32, left_id: u64, right_id: u64) -> Option<f32> {
        self.map.get(&(ctx, stage, left_id, right_id)).copied()
    }

    /// Stores a score (last write wins). Re-inserting an existing key
    /// updates the score in place without refreshing its eviction order.
    pub fn insert(&mut self, ctx: u64, stage: u32, left_id: u64, right_id: u64, score: f32) {
        let key = (ctx, stage, left_id, right_id);
        let was_new = self.map.insert(key, score).is_none();
        if let Some(cap) = self.capacity {
            if was_new {
                self.order.push_back(key);
                while self.map.len() > cap {
                    let oldest = self
                        .order
                        .pop_front()
                        .expect("bounded cache over capacity with empty order queue");
                    self.map.remove(&oldest);
                    self.evicted += 1;
                    em_obs::metrics::counter("serve.cache_evicted").inc();
                }
            }
        }
    }

    /// Snapshot of every cached entry as `(key, score_bits)`, sorted by
    /// key — for equivalence suites comparing two caches' full contents
    /// bitwise (e.g. pipelined vs barrier execution).
    pub fn entries(&self) -> Vec<((u64, u32, u64, u64), u32)> {
        let mut v: Vec<_> = self.map.iter().map(|(&k, &s)| (k, s.to_bits())).collect();
        v.sort_unstable();
        v
    }

    /// Number of cached entries across all stages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops all entries (the eviction count survives; it is a lifetime
    /// statistic, not a content one).
    pub fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bitwise() {
        let mut c = ScoreCache::new();
        let score = 0.123_456_79_f32;
        c.insert(0, 1, 10, 20, score);
        let got = c.get(0, 1, 10, 20).unwrap();
        assert_eq!(got.to_bits(), score.to_bits());
    }

    #[test]
    fn stages_are_isolated() {
        let mut c = ScoreCache::new();
        c.insert(0, 0, 1, 2, 0.9);
        assert_eq!(c.get(0, 1, 1, 2), None);
        assert_eq!(c.get(0, 0, 2, 1), None);
        assert_eq!(c.get(0, 0, 1, 2), Some(0.9));
    }

    #[test]
    fn contexts_are_isolated() {
        // Same (stage, ids) under two serialization contexts: neither
        // context may see the other's score.
        let mut c = ScoreCache::new();
        c.insert(11, 0, 1, 2, 0.9);
        assert_eq!(c.get(22, 0, 1, 2), None);
        assert_eq!(c.get(11, 0, 1, 2), Some(0.9));
        c.insert(22, 0, 1, 2, 0.1);
        assert_eq!(c.get(11, 0, 1, 2), Some(0.9));
        assert_eq!(c.get(22, 0, 1, 2), Some(0.1));
    }

    #[test]
    fn clear_empties() {
        let mut c = ScoreCache::new();
        c.insert(0, 0, 1, 2, 0.5);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = ScoreCache::new();
        for i in 0..10_000u64 {
            c.insert(0, 0, i, i, 0.5);
        }
        assert_eq!(c.len(), 10_000);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn bounded_cache_evicts_oldest_first() {
        let mut c = ScoreCache::with_capacity(2);
        c.insert(0, 0, 1, 1, 0.1);
        c.insert(0, 0, 2, 2, 0.2);
        c.insert(0, 0, 3, 3, 0.3); // evicts (0,1,1)
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(0, 0, 1, 1), None);
        assert_eq!(c.get(0, 0, 2, 2), Some(0.2));
        assert_eq!(c.get(0, 0, 3, 3), Some(0.3));
    }

    #[test]
    fn reinsert_updates_in_place_without_evicting() {
        let mut c = ScoreCache::with_capacity(2);
        c.insert(0, 0, 1, 1, 0.1);
        c.insert(0, 0, 2, 2, 0.2);
        c.insert(0, 0, 1, 1, 0.9); // same key: update, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(0, 0, 1, 1), Some(0.9));
        // (0,1,1) kept its original (oldest) slot, so it goes first.
        c.insert(0, 0, 3, 3, 0.3);
        assert_eq!(c.get(0, 0, 1, 1), None);
        assert_eq!(c.get(0, 0, 2, 2), Some(0.2));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = ScoreCache::with_capacity(0);
    }
}
