//! # em-serve — the production serving pipeline
//!
//! Converts the repo's matchers from offline LODO artifacts into an
//! end-to-end matching service (the system the paper's matchers "can be
//! easily plugged into", §2.1):
//!
//! 1. two [`RecordStore`]s hold the input relations with their
//!    serializations pre-rendered;
//! 2. a configurable [`em_blocking::Blocker`] prunes the cross product to
//!    candidate pairs;
//! 3. a **confidence-gated cascade** of [`Stage`]s scores them
//!    cheap-first — StringSim, then a frozen fine-tuned SLM
//!    ([`FrozenSlm`]), then a hosted LLM behind the resilient client —
//!    escalating only pairs whose confidence `|2s − 1|` is below the
//!    stage margin;
//! 4. a pair-keyed, stage-scoped [`ScoreCache`] makes revisits free and
//!    bitwise-stable;
//! 5. [`em_cost`] bills each stage's scored tokens, and `serve.*` spans /
//!    counters expose the run to `em-obs`.
//!
//! Failure handling: a hosted stage that degrades internally (breaker
//! open → fallback matcher) reports `degraded`; a stage that errors
//! outright keeps the previous stage's scores for its pairs — only a
//! stage-0 error aborts the run.

pub mod cache;
pub mod pipeline;
pub mod stage;
pub mod store;

pub use cache::ScoreCache;
pub use pipeline::{Executor, ServeConfig, ServePipeline, ServeReport, StageReport};
pub use stage::{approx_tokens, FrozenSlm, Stage};
pub use store::RecordStore;
