//! The blocking → cascade serving pipeline.

use crate::cache::ScoreCache;
use crate::stage::{approx_tokens, Stage};
use crate::store::RecordStore;
use em_blocking::{metrics::reduction_ratio, Blocker, CandidatePair};
use em_core::{run_chunks, EmError, EvalBatch, Result, SerializedPair};
use em_cost::estimate::{api_bill_for, ApiBill};

/// Tuning knobs of the serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Pairs per matcher call. Each call's internal parallelism (chunked
    /// scoring over the shared threadpool) provides the thread-level
    /// fan-out; this bounds peak memory per call.
    pub batch_size: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { batch_size: 512 }
    }
}

/// What one cascade stage did during a run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Pairs that reached this stage.
    pub pairs_in: usize,
    /// Pairs actually scored by the matcher (cache misses).
    pub scored: usize,
    /// Pairs answered from the score cache.
    pub cache_hits: usize,
    /// Pairs escalated to the next stage.
    pub escalated: usize,
    /// `true` if the stage's matcher returned an error and the cascade
    /// kept the previous stage's scores for its pairs.
    pub errored: bool,
    /// `true` if the matcher reported internal degradation (e.g. a hosted
    /// client falling back after a tripped breaker).
    pub degraded: bool,
    /// Wall-clock seconds spent scoring at this stage.
    pub seconds: f64,
    /// Approximate tokens billed for the scored pairs.
    pub tokens: u64,
    /// The stage's bill at its configured price.
    pub bill: ApiBill,
}

impl StageReport {
    /// Scored pairs per second (cache hits excluded).
    pub fn pairs_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.scored as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fraction of incoming pairs served from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.pairs_in > 0 {
            self.cache_hits as f64 / self.pairs_in as f64
        } else {
            0.0
        }
    }

    /// Fraction of incoming pairs escalated onward.
    pub fn escalation_fraction(&self) -> f64 {
        if self.pairs_in > 0 {
            self.escalated as f64 / self.pairs_in as f64
        } else {
            0.0
        }
    }
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Candidate pairs the blocker produced.
    pub candidates: usize,
    /// Blocking reduction ratio vs the full cross product.
    pub reduction_ratio: f64,
    /// Seconds spent in blocking.
    pub blocking_seconds: f64,
    /// Per-stage accounting, in cascade order.
    pub stages: Vec<StageReport>,
    /// The candidate pairs, aligned with `scores`.
    pub pairs: Vec<CandidatePair>,
    /// Final score per candidate pair (from the deepest stage that scored
    /// it).
    pub scores: Vec<f32>,
    /// Pairs declared matches (`score >= 0.5`).
    pub matches: Vec<CandidatePair>,
}

impl ServeReport {
    /// Total bill across stages.
    pub fn total_usd(&self) -> f64 {
        self.stages.iter().map(|s| s.bill.usd_total()).sum()
    }
}

/// A configured serving pipeline: blocker, matcher cascade, score cache.
///
/// Stages run cheap-first. Every candidate pair is scored by stage 0;
/// a pair escalates to stage `k + 1` only while its current confidence
/// `|2s − 1|` is below stage `k`'s margin. The deepest score wins. All
/// scoring is cached per `(stage, left_id, right_id)`, so a repeated run
/// over the same stores returns bitwise-identical scores without
/// invoking any matcher.
pub struct ServePipeline {
    blocker: Box<dyn Blocker>,
    stages: Vec<Stage>,
    cache: ScoreCache,
    config: ServeConfig,
}

impl ServePipeline {
    /// Builds a pipeline. `stages` must be non-empty and ordered
    /// cheap-to-expensive.
    pub fn new(blocker: Box<dyn Blocker>, stages: Vec<Stage>) -> Result<Self> {
        if stages.is_empty() {
            return Err(EmError::Config("cascade needs at least one stage".into()));
        }
        Ok(ServePipeline {
            blocker,
            stages,
            cache: ScoreCache::new(),
            config: ServeConfig::default(),
        })
    }

    /// Overrides the default configuration.
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        self.config = config;
        self
    }

    /// The score cache (for inspection; e.g. persisting between runs).
    pub fn cache(&self) -> &ScoreCache {
        &self.cache
    }

    /// Drops all cached scores.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Runs blocking and the cascade over two stores.
    ///
    /// Stage-0 errors are fatal (there is no cheaper tier to answer).
    /// An error at a deeper stage degrades instead: the affected pairs
    /// keep the previous stage's scores, the stage is flagged in its
    /// report, and the run completes.
    pub fn run(&mut self, left: &RecordStore, right: &RecordStore) -> Result<ServeReport> {
        let t_block = std::time::Instant::now();
        let pairs = {
            let _span = em_obs::span!(
                "serve.blocking",
                left = left.len(),
                right = right.len()
            );
            self.blocker.candidates(left.records(), right.records())
        };
        let blocking_seconds = t_block.elapsed().as_secs_f64();
        em_obs::metrics::counter("serve.candidates").add(pairs.len() as u64);
        let rr = reduction_ratio(pairs.len(), left.len(), right.len());

        // Assemble the serialized view once, in parallel chunks: the store
        // pre-rendered both sides, so a pair is two string clones.
        let chunks: Vec<&[CandidatePair]> = pairs.chunks(4096).collect();
        let serialized: Vec<SerializedPair> = run_chunks(&chunks, |chunk| {
            chunk
                .iter()
                .map(|&(i, j)| SerializedPair {
                    left: left.text(i).to_owned(),
                    right: right.text(j).to_owned(),
                })
                .collect::<Vec<_>>()
        })?
        .into_iter()
        .flatten()
        .collect();

        let mut scores = vec![0.0f32; pairs.len()];
        let mut active: Vec<usize> = (0..pairs.len()).collect();
        let mut reports: Vec<StageReport> = Vec::with_capacity(self.stages.len());
        let n_stages = self.stages.len();

        for (k, stage) in self.stages.iter_mut().enumerate() {
            if active.is_empty() {
                break;
            }
            let _span = em_obs::span!(
                "serve.stage",
                name = stage.name.as_str(),
                pairs = active.len()
            );
            let t0 = std::time::Instant::now();
            let pairs_in = active.len();

            // Cache pass: answered pairs skip the matcher entirely.
            let mut misses: Vec<usize> = Vec::new();
            let mut hits = 0u64;
            for &p in &active {
                let (i, j) = pairs[p];
                match self.cache.get(k as u32, left.id(i), right.id(j)) {
                    Some(s) => {
                        scores[p] = s;
                        hits += 1;
                    }
                    None => misses.push(p),
                }
            }
            em_obs::metrics::counter("serve.cache_hits").add(hits);

            // Batched scoring of the misses. Batches are sequential here
            // (the matcher needs `&mut`); each call parallelizes
            // internally over the shared threadpool.
            let mut errored = false;
            let mut tokens = 0u64;
            let mut scored = 0usize;
            'batches: for batch_idx in misses.chunks(self.config.batch_size) {
                let batch = EvalBatch {
                    serialized: batch_idx.iter().map(|&p| serialized[p].clone()).collect(),
                    raw: Vec::new(),
                    attr_types: Vec::new(),
                };
                match stage.matcher.predict_scores(&batch) {
                    Ok(batch_scores) => {
                        if batch_scores.len() != batch_idx.len() {
                            return Err(EmError::Numeric(format!(
                                "stage {} returned {} scores for {} pairs",
                                stage.name,
                                batch_scores.len(),
                                batch_idx.len()
                            )));
                        }
                        for (&p, s) in batch_idx.iter().zip(batch_scores) {
                            scores[p] = s;
                            let (i, j) = pairs[p];
                            self.cache.insert(k as u32, left.id(i), right.id(j), s);
                            tokens += approx_tokens(&serialized[p]);
                        }
                        scored += batch_idx.len();
                    }
                    Err(e) => {
                        if k == 0 {
                            // No cheaper tier exists to answer for these
                            // pairs: the run cannot produce scores.
                            return Err(e);
                        }
                        em_obs::metrics::counter("serve.stage_errors").inc();
                        em_obs::event!(
                            warn,
                            "serve.stage_error",
                            stage = stage.name.as_str(),
                            cause = format!("{e}").as_str()
                        );
                        errored = true;
                        break 'batches;
                    }
                }
            }
            em_obs::metrics::counter("serve.scored").add(scored as u64);

            // Escalation: pairs still inside the low-confidence band move
            // on. An errored stage escalates nothing — unscored pairs
            // keep the previous stage's (final) answer.
            let escalated: Vec<usize> = if errored || k + 1 >= n_stages {
                Vec::new()
            } else {
                active
                    .iter()
                    .copied()
                    .filter(|&p| {
                        let confidence = (2.0 * scores[p] as f64 - 1.0).abs();
                        confidence < stage.margin
                    })
                    .collect()
            };
            em_obs::metrics::counter("serve.escalated").add(escalated.len() as u64);

            reports.push(StageReport {
                name: stage.name.clone(),
                pairs_in,
                scored,
                cache_hits: hits as usize,
                escalated: escalated.len(),
                errored,
                degraded: stage.matcher.was_degraded(),
                seconds: t0.elapsed().as_secs_f64(),
                tokens,
                bill: api_bill_for(tokens, 0, stage.usd_per_1k_tokens),
            });
            if errored {
                break;
            }
            active = escalated;
        }

        let matches: Vec<CandidatePair> = pairs
            .iter()
            .zip(&scores)
            .filter_map(|(&p, &s)| (s >= 0.5).then_some(p))
            .collect();
        em_obs::metrics::counter("serve.matches").add(matches.len() as u64);

        Ok(ServeReport {
            candidates: pairs.len(),
            reduction_ratio: rr,
            blocking_seconds,
            stages: reports,
            pairs,
            scores,
            matches,
        })
    }
}
