//! The blocking → cascade serving pipeline.

use crate::cache::ScoreCache;
use crate::stage::Stage;
use crate::store::RecordStore;
use em_blocking::{
    metrics::reduction_ratio, Blocker, CandidatePair, IndexConfig, RelationIndex,
};
use em_core::{run_chunks, EmError, EvalBatch, Result, SerializedPair};
use em_cost::estimate::{api_bill_for, ApiBill};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// How the cascade schedules its stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Stage `k` finishes its whole active set before stage `k + 1`
    /// starts — the reference schedule the equivalence suite oracles
    /// against.
    Barrier,
    /// Candidates flow through the cascade in micro-batches: stage
    /// `k + 1` scores early escalations while stage `k` is still scoring
    /// later micro-batches. One worker per stage over the shared
    /// threadpool; the deterministic micro-batch-order merge keeps
    /// scores, reports, and the ScoreCache bitwise-identical to
    /// [`Executor::Barrier`] (pinned by `tests/pipeline_equivalence.rs`).
    Pipelined,
}

/// Tuning knobs of the serving run.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Pairs per matcher call. Each call's internal parallelism (chunked
    /// scoring over the shared threadpool) provides the thread-level
    /// fan-out; this bounds peak memory per call.
    pub batch_size: usize,
    /// Pairs per pipeline micro-batch — the granularity at which
    /// candidates flow between stages under [`Executor::Pipelined`].
    pub micro_batch: usize,
    /// Stage schedule.
    pub executor: Executor,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            batch_size: 512,
            micro_batch: 512,
            executor: Executor::Pipelined,
        }
    }
}

/// Index positions handled per parallel work item in the cache probe and
/// escalation sweeps.
const PAIR_CHUNK: usize = 4096;

/// What one cascade stage did during a run.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Pairs that reached this stage.
    pub pairs_in: usize,
    /// Pairs actually scored by the matcher (cache misses).
    pub scored: usize,
    /// Pairs answered from the score cache.
    pub cache_hits: usize,
    /// Pairs escalated to the next stage.
    pub escalated: usize,
    /// `true` if the stage's matcher returned an error and the cascade
    /// kept the previous stage's scores for its pairs.
    pub errored: bool,
    /// `true` if the matcher reported internal degradation (e.g. a hosted
    /// client falling back after a tripped breaker).
    pub degraded: bool,
    /// Wall-clock seconds spent scoring at this stage.
    pub seconds: f64,
    /// Approximate tokens billed for the scored pairs.
    pub tokens: u64,
    /// The stage's bill at its configured price.
    pub bill: ApiBill,
}

impl StageReport {
    /// Scored pairs per second (cache hits excluded).
    pub fn pairs_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.scored as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Fraction of incoming pairs served from cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.pairs_in > 0 {
            self.cache_hits as f64 / self.pairs_in as f64
        } else {
            0.0
        }
    }

    /// Fraction of incoming pairs escalated onward.
    pub fn escalation_fraction(&self) -> f64 {
        if self.pairs_in > 0 {
            self.escalated as f64 / self.pairs_in as f64
        } else {
            0.0
        }
    }
}

/// The result of one serving run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Candidate pairs the blocker produced.
    pub candidates: usize,
    /// Blocking reduction ratio vs the full cross product.
    pub reduction_ratio: f64,
    /// Seconds spent in blocking (index build/reuse + probe + pair
    /// serialization).
    pub blocking_seconds: f64,
    /// `true` when both stores were unchanged since the previous run and
    /// the candidate set (and its serialized view) was reused outright —
    /// no tokenization, no index build, no probe.
    pub blocking_reused: bool,
    /// Per-stage accounting, in cascade order.
    pub stages: Vec<StageReport>,
    /// The candidate pairs, aligned with `scores`.
    pub pairs: Vec<CandidatePair>,
    /// Final score per candidate pair (from the deepest stage that scored
    /// it).
    pub scores: Vec<f32>,
    /// Pairs declared matches (`score >= 0.5`).
    pub matches: Vec<CandidatePair>,
}

impl ServeReport {
    /// Total bill across stages.
    pub fn total_usd(&self) -> f64 {
        self.stages.iter().map(|s| s.bill.usd_total()).sum()
    }

    /// Fraction of candidates that escalated past stage 0 — the drift
    /// drill's degradation signal: rises as input quality drops.
    pub fn escalation_fraction(&self) -> f64 {
        match self.stages.first() {
            Some(s0) if self.candidates > 0 => s0.escalated as f64 / self.candidates as f64,
            _ => 0.0,
        }
    }

    /// `true` if any stage served degraded predictions this run.
    pub fn any_degraded(&self) -> bool {
        self.stages.iter().any(|s| s.degraded)
    }

    /// `true` if any stage errored (deep-stage failures that the cascade
    /// absorbed; stage-0 errors abort the run instead).
    pub fn any_errored(&self) -> bool {
        self.stages.iter().any(|s| s.errored)
    }
}

/// Blocking state carried between runs, keyed by the stores' identities.
///
/// Each side's [`RelationIndex`] stays valid while its store's
/// `(store_id, generation)` is unchanged; the candidate set and its
/// serialized view stay valid while *both* sides are unchanged. A store
/// mutation invalidates exactly the stale side — the fresh side's index
/// is still reused for the re-probe.
struct BlockSlot {
    left_key: (u64, u64),
    right_key: (u64, u64),
    /// Features the indexes were built with; must cover the blocker's
    /// requirement for the slot to be reusable.
    features: IndexConfig,
    left_index: Arc<RelationIndex>,
    right_index: Arc<RelationIndex>,
    pairs: Arc<Vec<CandidatePair>>,
    serialized: Arc<Vec<SerializedPair>>,
}

/// A configured serving pipeline: blocker, matcher cascade, score cache.
///
/// Stages run cheap-first. Every candidate pair is scored by stage 0;
/// a pair escalates to stage `k + 1` only while its current confidence
/// `|2s − 1|` is below stage `k`'s margin. The deepest score wins. All
/// scoring is cached per `(serialization ctx, stage, left_id, right_id)`,
/// so a repeated run over the same stores returns bitwise-identical
/// scores without invoking any matcher — and, because blocking state is
/// cached per store generation, without re-blocking either. The ctx
/// component combines both stores' serializer fingerprints, so re-serving
/// the same ids under a different serialization re-scores instead of
/// replaying stale answers.
pub struct ServePipeline {
    blocker: Box<dyn Blocker>,
    stages: Vec<Stage>,
    cache: ScoreCache,
    config: ServeConfig,
    slot: Option<BlockSlot>,
}

impl ServePipeline {
    /// Builds a pipeline. `stages` must be non-empty and ordered
    /// cheap-to-expensive.
    pub fn new(blocker: Box<dyn Blocker>, stages: Vec<Stage>) -> Result<Self> {
        if stages.is_empty() {
            return Err(EmError::Config("cascade needs at least one stage".into()));
        }
        Ok(ServePipeline {
            blocker,
            stages,
            cache: ScoreCache::new(),
            config: ServeConfig::default(),
            slot: None,
        })
    }

    /// Overrides the default configuration.
    pub fn with_config(mut self, config: ServeConfig) -> Self {
        assert!(config.batch_size > 0, "batch_size must be positive");
        assert!(config.micro_batch > 0, "micro_batch must be positive");
        self.config = config;
        self
    }

    /// Replaces the score cache with a bounded one (FIFO eviction past
    /// `capacity` entries). Drops any previously cached scores.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = ScoreCache::with_capacity(capacity);
        self
    }

    /// The score cache (for inspection; e.g. persisting between runs).
    pub fn cache(&self) -> &ScoreCache {
        &self.cache
    }

    /// Drops all cached scores.
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Drops the cached blocking state, forcing the next run to rebuild
    /// both indexes and re-probe. Scores stay cached.
    pub fn invalidate_blocking(&mut self) {
        self.slot = None;
    }

    /// Blocking for one run: reuse each side's index while its store is
    /// unchanged, reuse the candidate set outright when both are, and
    /// serialize fresh candidates as `Arc<str>` views of the stores'
    /// pre-rendered texts. Returns `(pairs, serialized, reused)`.
    fn block(
        &mut self,
        left: &RecordStore,
        right: &RecordStore,
    ) -> Result<(Arc<Vec<CandidatePair>>, Arc<Vec<SerializedPair>>, bool)> {
        let needed = self.blocker.required_features();
        let left_key = left.cache_key();
        let right_key = right.cache_key();

        let reusable = |side_key: (u64, u64), slot_key: (u64, u64), slot: &BlockSlot| {
            side_key == slot_key && slot.features.covers(&needed)
        };
        let left_index = match &self.slot {
            Some(s) if reusable(left_key, s.left_key, s) => Arc::clone(&s.left_index),
            _ => Arc::new(RelationIndex::build(left.records(), &needed)),
        };
        let right_index = match &self.slot {
            Some(s) if reusable(right_key, s.right_key, s) => Arc::clone(&s.right_index),
            _ => Arc::new(RelationIndex::build(right.records(), &needed)),
        };

        let full_reuse = self
            .slot
            .as_ref()
            .is_some_and(|s| reusable(left_key, s.left_key, s) && reusable(right_key, s.right_key, s));
        let (pairs, serialized) = if full_reuse {
            let s = self.slot.as_ref().expect("checked above");
            em_obs::metrics::counter("serve.blocking_reused").inc();
            (Arc::clone(&s.pairs), Arc::clone(&s.serialized))
        } else {
            let pairs = self.blocker.candidates_indexed(&left_index, &right_index);
            // Serialized views of the stores' pre-rendered texts: each
            // pair is two reference-count bumps, never a string copy.
            let chunks: Vec<&[CandidatePair]> = pairs.chunks(PAIR_CHUNK).collect();
            let serialized: Vec<SerializedPair> = run_chunks(&chunks, |chunk| {
                chunk
                    .iter()
                    .map(|&(i, j)| SerializedPair {
                        left: left.shared_text(i),
                        right: right.shared_text(j),
                    })
                    .collect::<Vec<_>>()
            })?
            .into_iter()
            .flatten()
            .collect();
            (Arc::new(pairs), Arc::new(serialized))
        };

        self.slot = Some(BlockSlot {
            left_key,
            right_key,
            features: needed,
            left_index,
            right_index,
            pairs: Arc::clone(&pairs),
            serialized: Arc::clone(&serialized),
        });
        Ok((pairs, serialized, full_reuse))
    }

    /// Runs blocking and the cascade over two stores.
    ///
    /// Stage-0 errors are fatal (there is no cheaper tier to answer).
    /// An error at a deeper stage degrades instead: the affected pairs
    /// keep the previous stage's scores, the stage is flagged in its
    /// report, and the run completes.
    ///
    /// The configured [`Executor`] decides the schedule; both produce
    /// bitwise-identical scores, reports (modulo per-stage `seconds`),
    /// and cache contents (`tests/pipeline_equivalence.rs`).
    pub fn run(&mut self, left: &RecordStore, right: &RecordStore) -> Result<ServeReport> {
        let t_block = std::time::Instant::now();
        let (pairs, serialized, blocking_reused) = {
            let _span = em_obs::span!(
                "serve.blocking",
                left = left.len(),
                right = right.len()
            );
            self.block(left, right)?
        };
        let blocking_seconds = t_block.elapsed().as_secs_f64();
        // Serialization context of this run: scores cached under one
        // (left, right) serializer configuration must never answer for
        // another. Asymmetric combine so swapped stores differ too.
        let ctx = left
            .serializer_fingerprint()
            .rotate_left(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ right.serializer_fingerprint();
        em_obs::metrics::counter("serve.candidates").add(pairs.len() as u64);
        let rr = reduction_ratio(pairs.len(), left.len(), right.len());
        let pairs_slice: &[CandidatePair] = &pairs;
        let serialized_slice: &[SerializedPair] = &serialized;

        let (reports, scores) = match self.config.executor {
            Executor::Barrier => self.run_barrier(ctx, left, right, pairs_slice, serialized_slice)?,
            Executor::Pipelined => {
                self.run_pipelined(ctx, left, right, pairs_slice, serialized_slice)?
            }
        };

        let matches: Vec<CandidatePair> = pairs_slice
            .iter()
            .zip(&scores)
            .filter_map(|(&p, &s)| (s >= 0.5).then_some(p))
            .collect();
        em_obs::metrics::counter("serve.matches").add(matches.len() as u64);

        Ok(ServeReport {
            candidates: pairs_slice.len(),
            reduction_ratio: rr,
            blocking_seconds,
            blocking_reused,
            stages: reports,
            pairs: pairs_slice.to_vec(),
            scores,
            matches,
        })
    }

    /// The reference schedule: each stage finishes its whole active set
    /// before the next starts.
    fn run_barrier(
        &mut self,
        ctx: u64,
        left: &RecordStore,
        right: &RecordStore,
        pairs_slice: &[CandidatePair],
        serialized_slice: &[SerializedPair],
    ) -> Result<(Vec<StageReport>, Vec<f32>)> {
        let mut scores = vec![0.0f32; pairs_slice.len()];
        let mut active: Vec<usize> = (0..pairs_slice.len()).collect();
        let mut reports: Vec<StageReport> = Vec::with_capacity(self.stages.len());
        let n_stages = self.stages.len();
        let batch_size = self.config.batch_size;
        let cache = &mut self.cache;

        for (k, stage) in self.stages.iter_mut().enumerate() {
            if active.is_empty() {
                break;
            }
            let _span = em_obs::span!(
                "serve.stage",
                name = stage.name.as_str(),
                pairs = active.len()
            );
            let t0 = std::time::Instant::now();
            let pairs_in = active.len();

            // Cache pass, fanned out in fixed position bands (the cache
            // is read-shared; merge order is band order, so the result is
            // identical to the sequential sweep). Answered pairs skip the
            // matcher entirely.
            let probe_chunks: Vec<&[usize]> = active.chunks(PAIR_CHUNK).collect();
            let probed: Vec<(Vec<(usize, f32)>, Vec<usize>)> = {
                let cache_view: &ScoreCache = cache;
                run_chunks(&probe_chunks, |chunk| {
                    probe_chunk(cache_view, ctx, k as u32, left, right, pairs_slice, chunk)
                })?
            };
            let mut misses: Vec<usize> = Vec::new();
            let mut hits = 0u64;
            for (chunk_hits, chunk_misses) in probed {
                for (p, s) in chunk_hits {
                    scores[p] = s;
                    hits += 1;
                }
                misses.extend(chunk_misses);
            }
            em_obs::metrics::counter("serve.cache_hits").add(hits);

            // Batched scoring of the misses. Batches are sequential here
            // (the matcher needs `&mut`); each call parallelizes
            // internally over the shared threadpool.
            let (scored_pairs, tokens, stage_err) =
                score_misses(stage, &misses, serialized_slice, batch_size);
            for &(p, s) in &scored_pairs {
                scores[p] = s;
                let (i, j) = pairs_slice[p];
                cache.insert(ctx, k as u32, left.id(i), right.id(j), s);
            }
            let scored = scored_pairs.len();
            em_obs::metrics::counter("serve.scored").add(scored as u64);
            let errored = match stage_err {
                None => false,
                // No cheaper tier exists to answer for stage-0 pairs:
                // the run cannot produce scores.
                Some(e) if k == 0 => return Err(e),
                Some(e) => {
                    em_obs::metrics::counter("serve.stage_errors").inc();
                    em_obs::event!(
                        warn,
                        "serve.stage_error",
                        stage = stage.name.as_str(),
                        cause = format!("{e}").as_str()
                    );
                    true
                }
            };

            // Escalation: pairs still inside the low-confidence band move
            // on, filtered in fixed position bands (pure read of the
            // score table; band-order merge keeps the sequential order).
            // An errored stage escalates nothing — unscored pairs keep
            // the previous stage's (final) answer.
            let escalated: Vec<usize> = if errored || k + 1 >= n_stages {
                Vec::new()
            } else {
                let margin = stage.margin;
                let scores_view: &[f32] = &scores;
                let esc_chunks: Vec<&[usize]> = active.chunks(PAIR_CHUNK).collect();
                run_chunks(&esc_chunks, |chunk| {
                    chunk
                        .iter()
                        .copied()
                        .filter(|&p| {
                            let confidence = (2.0 * scores_view[p] as f64 - 1.0).abs();
                            confidence < margin
                        })
                        .collect::<Vec<usize>>()
                })?
                .into_iter()
                .flatten()
                .collect()
            };
            em_obs::metrics::counter("serve.escalated").add(escalated.len() as u64);

            reports.push(StageReport {
                name: stage.name.clone(),
                pairs_in,
                scored,
                cache_hits: hits as usize,
                escalated: escalated.len(),
                errored,
                degraded: stage.matcher.was_degraded(),
                seconds: t0.elapsed().as_secs_f64(),
                tokens,
                bill: api_bill_for(tokens, 0, stage.usd_per_1k_tokens),
            });
            if errored {
                break;
            }
            active = escalated;
        }
        Ok((reports, scores))
    }

    /// The pipelined executor: one worker per stage, micro-batches
    /// flowing through channels, results buffered per micro-batch and
    /// merged on the caller's thread.
    ///
    /// Why this is bitwise-identical to the barrier: within one run a
    /// pair visits each stage at most once and cache keys carry the
    /// stage index, so a same-run insertion can never answer a same-run
    /// probe — probing the *pre-run* cache from every worker reproduces
    /// the barrier's exact hit/miss sets. Workers therefore share the
    /// cache read-only and buffer everything else; the merge applies
    /// scores and cache insertions in canonical barrier order
    /// (stage-major, micro-batch order, position order within each), so
    /// the final score table, the FIFO eviction sequence of a bounded
    /// cache, and the reports all come out bit-for-bit equal — only the
    /// per-stage `seconds` (busy time instead of stage wall time)
    /// differs.
    fn run_pipelined(
        &mut self,
        ctx: u64,
        left: &RecordStore,
        right: &RecordStore,
        pairs_slice: &[CandidatePair],
        serialized_slice: &[SerializedPair],
    ) -> Result<(Vec<StageReport>, Vec<f32>)> {
        let n_stages = self.stages.len();
        let batch_size = self.config.batch_size;
        let cache: &ScoreCache = &self.cache;
        let busy = AtomicUsize::new(0);
        let overlap = em_obs::metrics::counter("serve.overlap_busy");
        let depth_gauges: Vec<_> = self
            .stages
            .iter()
            .map(|s| em_obs::metrics::gauge(&format!("serve.queue_depth.{}", s.name)))
            .collect();

        // Feed every stage-0 micro-batch up front (channels are
        // unbounded; a micro-batch is just an index vector).
        let (tx0, rx0) = mpsc::channel::<(usize, Vec<usize>)>();
        for (mb, chunk) in (0..pairs_slice.len())
            .collect::<Vec<usize>>()
            .chunks(self.config.micro_batch)
            .enumerate()
        {
            depth_gauges[0].add(1);
            tx0.send((mb, chunk.to_vec())).expect("stage-0 queue open");
        }
        drop(tx0);

        let mut outcomes: Vec<StageOutcome> = std::thread::scope(|scope| {
            let mut rx_slot = Some(rx0);
            let mut handles = Vec::with_capacity(n_stages);
            for (k, stage) in self.stages.iter_mut().enumerate() {
                let rx = rx_slot.take().expect("every stage has a receiver");
                let (tx_next, rx_next) = if k + 1 < n_stages {
                    let (t, r) = mpsc::channel::<(usize, Vec<usize>)>();
                    (Some(t), Some(r))
                } else {
                    (None, None)
                };
                rx_slot = rx_next;
                let worker = StageWorker {
                    k,
                    n_stages,
                    ctx,
                    cache,
                    left,
                    right,
                    pairs: pairs_slice,
                    serialized: serialized_slice,
                    batch_size,
                    stage,
                    rx,
                    tx_next,
                    queue_gauge: Arc::clone(&depth_gauges[k]),
                    next_gauge: depth_gauges.get(k + 1).map(Arc::clone),
                    overlap: Arc::clone(&overlap),
                    busy: &busy,
                };
                handles.push(scope.spawn(move || stage_worker(worker)));
            }
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });

        // Deterministic merge. A deeper stage's buffered work is
        // discarded past the shallowest errored stage, exactly like the
        // barrier's `break` — it would never have run there.
        let kerr = outcomes.iter().position(|o| o.error.is_some());
        let limit = kerr.unwrap_or(n_stages - 1);
        let mut scores = vec![0.0f32; pairs_slice.len()];
        let mut reports: Vec<StageReport> = Vec::new();
        for (k, outcome) in outcomes.iter().enumerate().take(limit + 1) {
            if outcome.results.is_empty() {
                // Nothing ever reached this stage (nor any deeper one):
                // the barrier loop breaks on an empty active set.
                break;
            }
            let errored = outcome.error.is_some();
            let stage = &self.stages[k];
            let mut pairs_in = 0usize;
            let mut hits_n = 0u64;
            let mut scored_n = 0usize;
            let mut esc_n = 0usize;
            let mut tokens = 0u64;
            let mut seconds = 0.0f64;
            for mr in &outcome.results {
                pairs_in += mr.pairs_in;
                hits_n += mr.hits.len() as u64;
                esc_n += mr.escalated;
                tokens += mr.tokens;
                seconds += mr.seconds;
                for &(p, s) in &mr.hits {
                    scores[p] = s;
                }
                for &(p, s) in &mr.scored {
                    scores[p] = s;
                    let (i, j) = pairs_slice[p];
                    self.cache.insert(ctx, k as u32, left.id(i), right.id(j), s);
                }
                scored_n += mr.scored.len();
            }
            if errored {
                // Pre-error micro-batches did escalate downstream, but
                // that work is discarded above; the barrier reports an
                // errored stage as escalating nothing.
                esc_n = 0;
            }
            em_obs::metrics::counter("serve.cache_hits").add(hits_n);
            em_obs::metrics::counter("serve.scored").add(scored_n as u64);
            em_obs::metrics::counter("serve.escalated").add(esc_n as u64);
            reports.push(StageReport {
                name: stage.name.clone(),
                pairs_in,
                scored: scored_n,
                cache_hits: hits_n as usize,
                escalated: esc_n,
                errored,
                degraded: outcome.degraded,
                seconds,
                tokens,
                bill: api_bill_for(tokens, 0, stage.usd_per_1k_tokens),
            });
        }
        match kerr {
            // No cheaper tier exists to answer: fatal, as in the barrier
            // (stage-0 insertions applied above survive the same way the
            // barrier's partial progress does).
            Some(0) => Err(outcomes[0].error.take().expect("stage 0 errored")),
            Some(ke) => {
                let e = outcomes[ke].error.take().expect("stage errored");
                em_obs::metrics::counter("serve.stage_errors").inc();
                em_obs::event!(
                    warn,
                    "serve.stage_error",
                    stage = self.stages[ke].name.as_str(),
                    cause = format!("{e}").as_str()
                );
                Ok((reports, scores))
            }
            None => Ok((reports, scores)),
        }
    }
}

/// Splits one position band into cache hits and misses, preserving
/// position order on both sides.
fn probe_chunk(
    cache: &ScoreCache,
    ctx: u64,
    stage_idx: u32,
    left: &RecordStore,
    right: &RecordStore,
    pairs: &[CandidatePair],
    band: &[usize],
) -> (Vec<(usize, f32)>, Vec<usize>) {
    let mut hits = Vec::new();
    let mut misses = Vec::new();
    for &p in band {
        let (i, j) = pairs[p];
        match cache.get(ctx, stage_idx, left.id(i), right.id(j)) {
            Some(s) => hits.push((p, s)),
            None => misses.push(p),
        }
    }
    (hits, misses)
}

/// Scores `misses` in `batch_size` chunks through the stage's matcher.
///
/// Returns the `(position, score)` results in miss order, the stage's
/// exact-token bill, and the error (if any) that stopped scoring —
/// results collected before the error are kept, mirroring the barrier
/// loop's partial-progress semantics. A score-count mismatch is reported
/// as a stage error (which stage 0 turns fatal).
fn score_misses(
    stage: &mut Stage,
    misses: &[usize],
    serialized: &[SerializedPair],
    batch_size: usize,
) -> (Vec<(usize, f32)>, u64, Option<EmError>) {
    let mut scored: Vec<(usize, f32)> = Vec::with_capacity(misses.len());
    let mut tokens = 0u64;
    for batch_idx in misses.chunks(batch_size) {
        // Batch assembly shares the run's serialized views — cloning a
        // pair is two reference-count bumps, never a string copy.
        let batch = EvalBatch {
            serialized: batch_idx.iter().map(|&p| serialized[p].clone()).collect(),
            raw: Vec::new(),
            attr_types: Vec::new(),
        };
        match stage.matcher.predict_scores(&batch) {
            Ok(batch_scores) => {
                if batch_scores.len() != batch_idx.len() {
                    let e = EmError::Numeric(format!(
                        "stage {} returned {} scores for {} pairs",
                        stage.name,
                        batch_scores.len(),
                        batch_idx.len()
                    ));
                    return (scored, tokens, Some(e));
                }
                tokens += stage.bill_exact_tokens(&batch);
                scored.extend(batch_idx.iter().copied().zip(batch_scores));
            }
            Err(e) => return (scored, tokens, Some(e)),
        }
    }
    (scored, tokens, None)
}

/// Everything one pipelined worker recorded for one micro-batch, in
/// position order within each vector.
struct MicroResult {
    pairs_in: usize,
    hits: Vec<(usize, f32)>,
    scored: Vec<(usize, f32)>,
    escalated: usize,
    tokens: u64,
    seconds: f64,
}

/// One stage worker's buffered output: per-micro-batch results in
/// micro-batch order, plus the first error that stopped its scoring.
struct StageOutcome {
    results: Vec<MicroResult>,
    degraded: bool,
    error: Option<EmError>,
}

/// Borrowed context one pipelined stage worker runs with.
struct StageWorker<'a> {
    k: usize,
    n_stages: usize,
    ctx: u64,
    cache: &'a ScoreCache,
    left: &'a RecordStore,
    right: &'a RecordStore,
    pairs: &'a [CandidatePair],
    serialized: &'a [SerializedPair],
    batch_size: usize,
    stage: &'a mut Stage,
    rx: mpsc::Receiver<(usize, Vec<usize>)>,
    tx_next: Option<mpsc::Sender<(usize, Vec<usize>)>>,
    queue_gauge: Arc<em_obs::metrics::Gauge>,
    next_gauge: Option<Arc<em_obs::metrics::Gauge>>,
    overlap: Arc<em_obs::metrics::Counter>,
    busy: &'a AtomicUsize,
}

/// One stage's pipelined worker loop: receive a micro-batch, probe the
/// (read-only) cache, score the misses, forward the escalations, buffer
/// the rest for the merge. Exits when the previous stage drops its
/// sender.
fn stage_worker(w: StageWorker<'_>) -> StageOutcome {
    let StageWorker {
        k,
        n_stages,
        ctx,
        cache,
        left,
        right,
        pairs,
        serialized,
        batch_size,
        stage,
        rx,
        tx_next,
        queue_gauge,
        next_gauge,
        overlap,
        busy,
    } = w;
    let _span = em_obs::span!("serve.stage.worker", name = stage.name.as_str());
    let margin = stage.margin;
    let mut results: Vec<MicroResult> = Vec::new();
    let mut first_error: Option<EmError> = None;
    while let Ok((mb, active)) = rx.recv() {
        queue_gauge.add(-1);
        // Overlap accounting: this micro-batch is being processed while
        // at least one other stage is mid-micro-batch.
        if busy.fetch_add(1, Ordering::Relaxed) > 0 {
            overlap.inc();
        }
        let t0 = std::time::Instant::now();
        let (hits, misses) = probe_chunk(cache, ctx, k as u32, left, right, pairs, &active);
        let (scored, tokens, err) = if first_error.is_none() {
            score_misses(stage, &misses, serialized, batch_size)
        } else {
            // An errored stage degrades to probe-only for the rest of
            // the run: the barrier would not have scored these either.
            (Vec::new(), 0, None)
        };
        let healthy = first_error.is_none() && err.is_none();
        // Escalation in position order: each active pair's score is a
        // cache hit or a fresh result (both vectors ascend by position).
        let mut escalated: Vec<usize> = Vec::new();
        if healthy && k + 1 < n_stages {
            let (mut hi, mut si) = (0usize, 0usize);
            for &p in &active {
                let s = if hi < hits.len() && hits[hi].0 == p {
                    hi += 1;
                    hits[hi - 1].1
                } else if si < scored.len() && scored[si].0 == p {
                    si += 1;
                    scored[si - 1].1
                } else {
                    continue;
                };
                if (2.0 * s as f64 - 1.0).abs() < margin {
                    escalated.push(p);
                }
            }
        }
        let seconds = t0.elapsed().as_secs_f64();
        busy.fetch_sub(1, Ordering::Relaxed);
        if let Some(tx) = &tx_next {
            if !escalated.is_empty() {
                if let Some(g) = &next_gauge {
                    g.add(1);
                }
                // A failed send means the next worker died; its panic
                // resurfaces at the merge's join, so losing the forward
                // is moot.
                let _ = tx.send((mb, escalated.clone()));
            }
        }
        if first_error.is_none() {
            first_error = err;
        }
        results.push(MicroResult {
            pairs_in: active.len(),
            hits,
            scored,
            escalated: escalated.len(),
            tokens,
            seconds,
        });
    }
    StageOutcome {
        results,
        degraded: stage.matcher.was_degraded(),
        error: first_error,
    }
}
