//! Cascade stages: a fitted matcher plus its gating margin and price.

use em_core::{run_chunks, EmError, EvalBatch, LodoSplit, Matcher, Result, SerializedPair};
use em_lm::{encode_pair, Batch, Encoded, EncoderClassifier, HashTokenizer, InferencePrecision};

/// One stage of the matcher cascade.
///
/// The matcher arrives already fitted (or parameter-free); the serving
/// pipeline never trains. `margin` gates escalation: a pair whose score
/// confidence `|2s − 1|` falls below it is forwarded to the next stage.
/// `usd_per_1k_tokens` prices the stage's scoring for the per-stage
/// `em_cost` bill (0 for free local stages like StringSim).
pub struct Stage {
    /// Display name for reports and spans.
    pub name: String,
    /// The fitted matcher answering this stage.
    pub matcher: Box<dyn Matcher>,
    /// Escalate when `|2s − 1| < margin`. 0 disables escalation from this
    /// stage; 1 escalates everything but exact 0/1 scores.
    pub margin: f64,
    /// Price per 1K (approximate) tokens scored at this stage.
    pub usd_per_1k_tokens: f64,
}

impl Stage {
    /// A free stage with the default 0.3 escalation margin.
    pub fn new(name: impl Into<String>, matcher: Box<dyn Matcher>) -> Self {
        Stage {
            name: name.into(),
            matcher,
            margin: 0.3,
            usd_per_1k_tokens: 0.0,
        }
    }

    /// Sets the escalation margin.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!((0.0..=1.0).contains(&margin), "margin {margin} outside [0,1]");
        self.margin = margin;
        self
    }

    /// Sets the per-1K-token price.
    pub fn priced(mut self, usd_per_1k_tokens: f64) -> Self {
        self.usd_per_1k_tokens = usd_per_1k_tokens;
        self
    }

    /// Tokens to bill for the batch the stage's matcher just scored.
    ///
    /// Local tiers that know their real consumption (a [`FrozenSlm`]
    /// knows its encoded lengths) report it through
    /// [`Matcher::exact_billed_tokens`]; everything else falls back to
    /// the serialized-bytes/4 approximation. The exact path stops the
    /// bill counting bytes the encoder truncated away — a padded or
    /// over-long pair bills what the model actually consumed.
    pub fn bill_exact_tokens(&self, batch: &EvalBatch) -> u64 {
        match self.matcher.exact_billed_tokens() {
            Some(exact) if exact.len() == batch.len() => exact.iter().sum(),
            _ => batch.serialized.iter().map(approx_tokens).sum(),
        }
    }
}

/// Approximate token count of a serialized pair (the ~4 bytes/token rule
/// the price book uses), never zero so every scored pair bills something.
pub fn approx_tokens(pair: &SerializedPair) -> u64 {
    (pair.len_bytes() as u64 / 4).max(1)
}

/// Pairs encoded per parallel work item on the serve tokenization path.
const ENCODE_CHUNK: usize = 256;

/// A pre-trained encoder classifier served frozen — the cascade's
/// fine-tuned-SLM tier. Unlike `em_matchers::Ditto`, which trains inside
/// `fit` for the LODO protocol, this wrapper takes finished weights: the
/// serving system loads a model, it doesn't grow one.
///
/// Scoring runs the full inference fast path:
///
/// - **parallel tokenization** — pairs are encoded in
///   [`ENCODE_CHUNK`]-sized chunks over the shared threadpool;
/// - **length-bucketed collation** — indices are stable-sorted by
///   encoded (valid) length, chunked into model batches, and each bucket
///   is pad-to-batch-max collated, so short pairs never pay a long
///   pair's padding; scores are scattered back to input order;
/// - **optional int8 GEMMs** — [`Self::with_precision`] wires
///   `em_nn::qgemm` into every Linear (guarded by the qgemm flip-rate /
///   drift gates; `Full` restores f32 bits).
///
/// Every step is per-sequence independent (per-row activation
/// quantization, masked attention, masked mean pooling, exact i32
/// accumulation), so bucketing and batch composition never change a
/// pair's score bits — the scattered result is bitwise-identical to
/// scoring in input order, which `tests/` pin.
pub struct FrozenSlm {
    name: String,
    model: EncoderClassifier,
    tokenizer: HashTokenizer,
    batch_size: usize,
    /// Valid encoded length per pair of the most recent scoring call —
    /// the tokens the model actually consumed, for exact billing.
    last_exact_tokens: Vec<u64>,
}

impl FrozenSlm {
    /// Wraps trained weights and their tokenizer.
    pub fn new(name: impl Into<String>, model: EncoderClassifier, tokenizer: HashTokenizer) -> Self {
        FrozenSlm {
            name: name.into(),
            model,
            tokenizer,
            batch_size: 64,
            last_exact_tokens: Vec::new(),
        }
    }

    /// Switches the inference GEMM precision (`Int8` quantizes every
    /// Linear; `Full` restores the original f32 bits).
    pub fn with_precision(mut self, precision: InferencePrecision) -> Self {
        self.model.set_inference_precision(precision);
        self
    }

    /// Sets the model batch size (sequences per forward call, which is
    /// also the length-bucket width). Must be positive.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        self.batch_size = batch_size;
        self
    }

    /// The one scoring path both [`Matcher::predict`] and
    /// [`Matcher::predict_scores`] route through, so the ≥0.5 decision
    /// can never diverge from the score surface.
    fn scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        self.last_exact_tokens.clear();
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let max_seq = self.model.config.max_seq;

        // Tokenize in parallel chunks; chunk-order merge keeps input order.
        let tok = &self.tokenizer;
        let chunks: Vec<&[SerializedPair]> = batch.serialized.chunks(ENCODE_CHUNK).collect();
        let encoded: Vec<Encoded> = run_chunks(&chunks, |chunk| {
            chunk
                .iter()
                .map(|p| encode_pair(tok, p, max_seq))
                .collect::<Vec<_>>()
        })?
        .into_iter()
        .flatten()
        .collect();

        // Valid (unpadded) length per pair: what the model consumes and
        // what the stage bills. Floor 1 to match the collation floor.
        let valid: Vec<usize> = encoded
            .iter()
            .map(|e| e.mask.iter().rposition(|&m| m).map_or(1, |p| p + 1))
            .collect();
        self.last_exact_tokens = valid.iter().map(|&v| v as u64).collect();

        // Length buckets: stable sort of indices keeps equal-length pairs
        // in input order, so the bucket assignment is deterministic.
        let mut order: Vec<usize> = (0..encoded.len()).collect();
        order.sort_by_key(|&i| valid[i]);

        let mut scores = vec![0.0f32; encoded.len()];
        let mut pad_saved = 0usize;
        let mut model_batch = Batch::empty();
        for bucket in order.chunks(self.batch_size) {
            model_batch.collate_indices_into(&encoded, bucket);
            pad_saved += model_batch.padded_tokens_saved(max_seq);
            let logits = self.model.forward(&model_batch);
            if logits.len() != bucket.len() {
                return Err(EmError::Numeric("SLM score batch size mismatch".into()));
            }
            for (&p, logit) in bucket.iter().zip(logits) {
                scores[p] = em_nn::sigmoid_f32(logit);
            }
        }
        em_obs::metrics::counter("serve.bucket_pad_saved").add(pad_saved as u64);
        Ok(scores)
    }
}

impl Matcher for FrozenSlm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn params_millions(&self) -> Option<f64> {
        Some(self.model.param_count() as f64 / 1e6)
    }

    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        // Weights are frozen; serving never trains.
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(self.scores(batch)?.into_iter().map(|s| s >= 0.5).collect())
    }

    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        self.scores(batch)
    }

    fn exact_billed_tokens(&self) -> Option<Vec<u64>> {
        Some(self.last_exact_tokens.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_matchers::StringSim;

    #[test]
    fn builder_sets_fields() {
        let s = Stage::new("strsim", Box::new(StringSim::new()))
            .with_margin(0.4)
            .priced(0.015);
        assert_eq!(s.name, "strsim");
        assert_eq!(s.margin, 0.4);
        assert_eq!(s.usd_per_1k_tokens, 0.015);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn margin_is_validated() {
        let _ = Stage::new("x", Box::new(StringSim::new())).with_margin(1.5);
    }

    #[test]
    fn approx_tokens_never_zero() {
        let tiny = SerializedPair {
            left: "a".into(),
            right: "b".into(),
        };
        assert_eq!(approx_tokens(&tiny), 1);
        let bigger = SerializedPair {
            left: "x".repeat(40).into(),
            right: "y".repeat(40).into(),
        };
        assert_eq!(approx_tokens(&bigger), 20);
    }
}
