//! Cascade stages: a fitted matcher plus its gating margin and price.

use em_core::{EmError, EvalBatch, LodoSplit, Matcher, Result, SerializedPair};
use em_lm::{encode_pair, predict_proba, EncoderClassifier, HashTokenizer};

/// One stage of the matcher cascade.
///
/// The matcher arrives already fitted (or parameter-free); the serving
/// pipeline never trains. `margin` gates escalation: a pair whose score
/// confidence `|2s − 1|` falls below it is forwarded to the next stage.
/// `usd_per_1k_tokens` prices the stage's scoring for the per-stage
/// `em_cost` bill (0 for free local stages like StringSim).
pub struct Stage {
    /// Display name for reports and spans.
    pub name: String,
    /// The fitted matcher answering this stage.
    pub matcher: Box<dyn Matcher>,
    /// Escalate when `|2s − 1| < margin`. 0 disables escalation from this
    /// stage; 1 escalates everything but exact 0/1 scores.
    pub margin: f64,
    /// Price per 1K (approximate) tokens scored at this stage.
    pub usd_per_1k_tokens: f64,
}

impl Stage {
    /// A free stage with the default 0.3 escalation margin.
    pub fn new(name: impl Into<String>, matcher: Box<dyn Matcher>) -> Self {
        Stage {
            name: name.into(),
            matcher,
            margin: 0.3,
            usd_per_1k_tokens: 0.0,
        }
    }

    /// Sets the escalation margin.
    pub fn with_margin(mut self, margin: f64) -> Self {
        assert!((0.0..=1.0).contains(&margin), "margin {margin} outside [0,1]");
        self.margin = margin;
        self
    }

    /// Sets the per-1K-token price.
    pub fn priced(mut self, usd_per_1k_tokens: f64) -> Self {
        self.usd_per_1k_tokens = usd_per_1k_tokens;
        self
    }
}

/// Approximate token count of a serialized pair (the ~4 bytes/token rule
/// the price book uses), never zero so every scored pair bills something.
pub fn approx_tokens(pair: &SerializedPair) -> u64 {
    (pair.len_bytes() as u64 / 4).max(1)
}

/// A pre-trained encoder classifier served frozen — the cascade's
/// fine-tuned-SLM tier. Unlike `em_matchers::Ditto`, which trains inside
/// `fit` for the LODO protocol, this wrapper takes finished weights: the
/// serving system loads a model, it doesn't grow one.
pub struct FrozenSlm {
    name: String,
    model: EncoderClassifier,
    tokenizer: HashTokenizer,
    batch_size: usize,
}

impl FrozenSlm {
    /// Wraps trained weights and their tokenizer.
    pub fn new(name: impl Into<String>, model: EncoderClassifier, tokenizer: HashTokenizer) -> Self {
        FrozenSlm {
            name: name.into(),
            model,
            tokenizer,
            batch_size: 64,
        }
    }
}

impl Matcher for FrozenSlm {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn params_millions(&self) -> Option<f64> {
        Some(self.model.param_count() as f64 / 1e6)
    }

    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        // Weights are frozen; serving never trains.
        Ok(())
    }

    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(self
            .predict_scores(batch)?
            .into_iter()
            .map(|s| s >= 0.5)
            .collect())
    }

    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        let encoded: Vec<_> = batch
            .serialized
            .iter()
            .map(|p| encode_pair(&self.tokenizer, p, self.model.config.max_seq))
            .collect();
        let scores = predict_proba(&self.model, &encoded, self.batch_size);
        if scores.len() != batch.len() {
            return Err(EmError::Numeric("SLM score batch size mismatch".into()));
        }
        Ok(scores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_matchers::StringSim;

    #[test]
    fn builder_sets_fields() {
        let s = Stage::new("strsim", Box::new(StringSim::new()))
            .with_margin(0.4)
            .priced(0.015);
        assert_eq!(s.name, "strsim");
        assert_eq!(s.margin, 0.4);
        assert_eq!(s.usd_per_1k_tokens, 0.015);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn margin_is_validated() {
        let _ = Stage::new("x", Box::new(StringSim::new())).with_margin(1.5);
    }

    #[test]
    fn approx_tokens_never_zero() {
        let tiny = SerializedPair {
            left: "a".into(),
            right: "b".into(),
        };
        assert_eq!(approx_tokens(&tiny), 1);
        let bigger = SerializedPair {
            left: "x".repeat(40).into(),
            right: "y".repeat(40).into(),
        };
        assert_eq!(approx_tokens(&bigger), 20);
    }
}
