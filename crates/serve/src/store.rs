//! Record stores: one relation plus its precomputed serialized texts.

use em_core::{Record, Serializer};

/// An in-memory relation prepared for serving: every record's
/// values-only serialization (the only view matchers receive) is rendered
/// once at load time, so candidate-pair assembly is two string clones
/// instead of a per-pair render.
#[derive(Debug, Clone)]
pub struct RecordStore {
    records: Vec<Record>,
    texts: Vec<String>,
}

impl RecordStore {
    /// Builds a store, rendering all serializations in identity column
    /// order (the serving system has one canonical serialization; the
    /// per-seed permutations belong to the LODO repetition protocol).
    pub fn new(records: Vec<Record>) -> Self {
        let arity = records.first().map(|r| r.values.len()).unwrap_or(0);
        let ser = Serializer::identity(arity);
        let texts = records.iter().map(|r| ser.record(r)).collect();
        RecordStore { records, texts }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The underlying records (what blockers consume).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The record at `idx`.
    pub fn record(&self, idx: usize) -> &Record {
        &self.records[idx]
    }

    /// The precomputed serialization of the record at `idx`.
    pub fn text(&self, idx: usize) -> &str {
        &self.texts[idx]
    }

    /// The stable id of the record at `idx` (cache key material).
    pub fn id(&self, idx: usize) -> u64 {
        self.records[idx].id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    #[test]
    fn texts_match_identity_serialization() {
        let store = RecordStore::new(vec![
            Record::new(7, vec![AttrValue::from("sony tv"), AttrValue::from(99.0)]),
            Record::new(8, vec![AttrValue::from("lamp"), AttrValue::Missing]),
        ]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.text(0), "sony tv, 99");
        assert_eq!(store.text(1), "lamp, ");
        assert_eq!(store.id(0), 7);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = RecordStore::new(vec![]);
        assert!(store.is_empty());
    }
}
