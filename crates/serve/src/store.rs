//! Record stores: one relation plus its precomputed serialized texts.

use em_core::{Record, Serializer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide store-id source: every distinct store (including clones)
/// gets its own identity so a pipeline's cached blocking state can never
/// alias two stores that merely share content.
static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_store_id() -> u64 {
    NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed)
}

/// An in-memory relation prepared for serving: every record's
/// values-only serialization (the only view matchers receive) is rendered
/// once at load time into a shared `Arc<str>`, so a candidate pair is two
/// reference-count bumps instead of two string copies.
///
/// A store carries an *identity*: a process-unique `store_id` plus a
/// `generation` counter bumped on every mutation. `(store_id, generation)`
/// keys the pipeline's persistent blocking state — warm runs over an
/// unchanged store skip tokenization, index construction, and the probe
/// entirely, and any [`append`](RecordStore::append) invalidates exactly
/// the stale side.
#[derive(Debug)]
pub struct RecordStore {
    records: Vec<Record>,
    texts: Vec<Arc<str>>,
    serializer: Serializer,
    /// `true` when the serializer was handed in explicitly
    /// ([`with_serializer`](RecordStore::with_serializer)) rather than
    /// derived — an explicit serializer survives appends into an
    /// initially-empty store.
    explicit_serializer: bool,
    store_id: u64,
    generation: u64,
}

impl Clone for RecordStore {
    /// Clones the data but *not* the identity: the clone is a new store
    /// (fresh `store_id`, generation 0), because its future mutations are
    /// independent of the original's.
    fn clone(&self) -> Self {
        RecordStore {
            records: self.records.clone(),
            texts: self.texts.clone(),
            serializer: self.serializer.clone(),
            explicit_serializer: self.explicit_serializer,
            store_id: fresh_store_id(),
            generation: 0,
        }
    }
}

impl RecordStore {
    /// Builds a store, rendering all serializations in identity column
    /// order (the serving system has one canonical serialization; the
    /// per-seed permutations belong to the LODO repetition protocol).
    pub fn new(records: Vec<Record>) -> Self {
        let arity = records.first().map(|r| r.values.len()).unwrap_or(0);
        Self::build(records, Serializer::identity(arity), false)
    }

    /// Builds a store that renders under an explicit serializer — the
    /// entry point for serialization-ablation runs (shuffled column
    /// order, `name: value` style). The serializer's fingerprint flows
    /// into the pipeline's score-cache key, so scores cached under one
    /// serialization are never replayed under another.
    pub fn with_serializer(records: Vec<Record>, serializer: Serializer) -> Self {
        Self::build(records, serializer, true)
    }

    fn build(records: Vec<Record>, serializer: Serializer, explicit: bool) -> Self {
        let texts = records
            .iter()
            .map(|r| Arc::from(serializer.record(r)))
            .collect();
        RecordStore {
            records,
            texts,
            serializer,
            explicit_serializer: explicit,
            store_id: fresh_store_id(),
            generation: 0,
        }
    }

    /// Appends records, rendering their texts and bumping the generation
    /// so pipelines rebuild this side's blocking state on the next run.
    pub fn append(&mut self, records: Vec<Record>) {
        if records.is_empty() {
            return;
        }
        if self.records.is_empty() && !self.explicit_serializer {
            // The store was built empty, so the arity (and thus the
            // serializer) could not be derived at construction time. An
            // explicitly provided serializer is kept as-is.
            let arity = records[0].values.len();
            self.serializer = Serializer::identity(arity);
        }
        let rendered: Vec<Arc<str>> = records
            .iter()
            .map(|r| Arc::from(self.serializer.record(r)))
            .collect();
        self.texts.extend(rendered);
        self.records.extend(records);
        self.generation += 1;
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The underlying records (what blockers consume).
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// The record at `idx`.
    pub fn record(&self, idx: usize) -> &Record {
        &self.records[idx]
    }

    /// The precomputed serialization of the record at `idx`.
    pub fn text(&self, idx: usize) -> &str {
        &self.texts[idx]
    }

    /// The shared handle to the serialization at `idx` — cloning it is a
    /// reference-count bump, never a string copy.
    pub fn shared_text(&self, idx: usize) -> Arc<str> {
        Arc::clone(&self.texts[idx])
    }

    /// The stable id of the record at `idx` (cache key material).
    pub fn id(&self, idx: usize) -> u64 {
        self.records[idx].id
    }

    /// Process-unique identity of this store.
    pub fn store_id(&self) -> u64 {
        self.store_id
    }

    /// Mutation counter; bumped by [`append`](RecordStore::append).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `(store_id, generation)` — the key under which derived blocking
    /// state (indexes, candidates, serialized views) stays valid.
    pub fn cache_key(&self) -> (u64, u64) {
        (self.store_id, self.generation)
    }

    /// Fingerprint of the serializer the texts were rendered with —
    /// score-cache key material (see [`em_core::Serializer::fingerprint`]).
    pub fn serializer_fingerprint(&self) -> u64 {
        self.serializer.fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_core::AttrValue;

    #[test]
    fn texts_match_identity_serialization() {
        let store = RecordStore::new(vec![
            Record::new(7, vec![AttrValue::from("sony tv"), AttrValue::from(99.0)]),
            Record::new(8, vec![AttrValue::from("lamp"), AttrValue::Missing]),
        ]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.text(0), "sony tv, 99");
        assert_eq!(store.text(1), "lamp, ");
        assert_eq!(store.id(0), 7);
    }

    #[test]
    fn empty_store_is_fine() {
        let store = RecordStore::new(vec![]);
        assert!(store.is_empty());
    }

    #[test]
    fn append_bumps_generation_and_renders_texts() {
        let mut store = RecordStore::new(vec![Record::new(
            1,
            vec![AttrValue::from("a"), AttrValue::from("b")],
        )]);
        assert_eq!(store.generation(), 0);
        store.append(vec![Record::new(
            2,
            vec![AttrValue::from("c"), AttrValue::from("d")],
        )]);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.text(1), "c, d");
        // Appending nothing is not a mutation.
        store.append(vec![]);
        assert_eq!(store.generation(), 1);
    }

    #[test]
    fn stores_have_distinct_identities() {
        let a = RecordStore::new(vec![]);
        let b = RecordStore::new(vec![]);
        let c = a.clone();
        assert_ne!(a.store_id(), b.store_id());
        assert_ne!(a.store_id(), c.store_id(), "clone must not alias");
    }

    #[test]
    fn explicit_serializer_renders_and_survives_appends() {
        let named = Serializer::identity(2).with_names(vec!["name".into(), "price".into()]);
        let mut store = RecordStore::with_serializer(vec![], named.clone());
        assert_eq!(store.serializer_fingerprint(), named.fingerprint());
        store.append(vec![Record::new(
            1,
            vec![AttrValue::from("tv"), AttrValue::from(99.0)],
        )]);
        // Appending into the initially-empty store must NOT reset the
        // explicit serializer to the identity.
        assert_eq!(store.text(0), "name: tv, price: 99");
        assert_eq!(store.serializer_fingerprint(), named.fingerprint());
    }

    #[test]
    fn serializer_fingerprint_distinguishes_variants() {
        let recs = vec![Record::new(
            1,
            vec![AttrValue::from("a"), AttrValue::from("b")],
        )];
        let plain = RecordStore::new(recs.clone());
        let named = RecordStore::with_serializer(
            recs,
            Serializer::identity(2).with_names(vec!["x".into(), "y".into()]),
        );
        assert_ne!(
            plain.serializer_fingerprint(),
            named.serializer_fingerprint()
        );
    }

    #[test]
    fn shared_text_aliases_the_stored_rendering() {
        let store = RecordStore::new(vec![Record::new(1, vec![AttrValue::from("x")])]);
        let t = store.shared_text(0);
        assert!(Arc::ptr_eq(&t, &store.shared_text(0)));
        assert_eq!(&*t, "x");
    }
}
