//! Cascade invariants: escalation is gated exactly by the stage margin,
//! cache hits are bitwise-stable, deep-stage failures degrade instead of
//! aborting, and the assembled pipeline works end to end on generated
//! relations.

use em_blocking::{full_cross_product, pair_set, Blocker, CandidatePair, TokenBlocker};
use em_core::{AttrValue, EmError, EvalBatch, LodoSplit, Matcher, Record, Result};
use em_matchers::StringSim;
use em_serve::{RecordStore, ScoreCache, ServePipeline, Stage};
use std::sync::{Arc, Mutex};

/// Pairs everything with everything (tiny-test blocker).
struct All;

impl Blocker for All {
    fn candidates_indexed(
        &self,
        left: &em_blocking::RelationIndex,
        right: &em_blocking::RelationIndex,
    ) -> Vec<CandidatePair> {
        (0..left.len())
            .flat_map(|i| (0..right.len()).map(move |j| (i, j)))
            .collect()
    }

    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        full_cross_product(left, right)
    }
}

/// Scores a pair by parsing field `column` of the *left* record's
/// serialization — the test scripts exact scores into the data.
struct Scripted {
    column: usize,
    /// Serialized left sides of every pair this matcher scored.
    seen: Arc<Mutex<Vec<String>>>,
}

impl Scripted {
    fn new(column: usize) -> (Self, Arc<Mutex<Vec<String>>>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        (
            Scripted {
                column,
                seen: seen.clone(),
            },
            seen,
        )
    }
}

impl Matcher for Scripted {
    fn name(&self) -> String {
        format!("Scripted[{}]", self.column)
    }
    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(())
    }
    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(self
            .predict_scores(batch)?
            .into_iter()
            .map(|s| s >= 0.5)
            .collect())
    }
    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        let mut seen = self.seen.lock().unwrap();
        batch
            .serialized
            .iter()
            .map(|p| {
                seen.push(p.left.to_string());
                p.left
                    .split(", ")
                    .nth(self.column)
                    .and_then(|f| f.parse::<f32>().ok())
                    .ok_or_else(|| EmError::Numeric(format!("unparseable script: {}", p.left)))
            })
            .collect()
    }
}

/// Always errors (a dead backend with no internal fallback).
struct Dead;

impl Matcher for Dead {
    fn name(&self) -> String {
        "Dead".into()
    }
    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(())
    }
    fn predict(&mut self, _batch: &EvalBatch) -> Result<Vec<bool>> {
        Err(EmError::Numeric("backend unreachable".into()))
    }
    fn predict_scores(&mut self, _batch: &EvalBatch) -> Result<Vec<f32>> {
        Err(EmError::Numeric("backend unreachable".into()))
    }
}

/// Left records scripting (stage0, stage1) scores into two columns.
fn scripted_store(scores: &[(f32, f32)]) -> RecordStore {
    RecordStore::new(
        scores
            .iter()
            .enumerate()
            .map(|(i, &(s0, s1))| {
                Record::new(
                    i as u64,
                    vec![
                        AttrValue::from(format!("{s0}")),
                        AttrValue::from(format!("{s1}")),
                    ],
                )
            })
            .collect(),
    )
}

fn probe_store() -> RecordStore {
    RecordStore::new(vec![Record::new(
        999,
        vec![AttrValue::from("0"), AttrValue::from("0")],
    )])
}

#[test]
fn escalation_happens_exactly_below_the_margin() {
    // stage0 scores with confidences 0.8, 0.2, 0.04, 0.8, 0.1: at margin
    // 0.3 exactly the three low-confidence pairs must escalate.
    let scripted = [
        (0.9f32, 0.95f32), // confident match — stays
        (0.6, 0.9),        // low margin — escalates, flips harder
        (0.52, 0.1),       // low margin — escalates, flips to non-match
        (0.1, 0.5),        // confident non-match — stays
        (0.45, 0.8),       // low margin — escalates
    ];
    let left = scripted_store(&scripted);
    let right = probe_store();
    let (s0, seen0) = Scripted::new(0);
    let (s1, seen1) = Scripted::new(1);
    let mut pipe = ServePipeline::new(
        Box::new(All),
        vec![
            Stage::new("s0", Box::new(s0)).with_margin(0.3),
            Stage::new("s1", Box::new(s1)).with_margin(0.0),
        ],
    )
    .unwrap();
    let report = pipe.run(&left, &right).unwrap();

    assert_eq!(report.candidates, 5);
    assert_eq!(seen0.lock().unwrap().len(), 5, "stage0 scores everything");
    let escalated: Vec<String> = seen1.lock().unwrap().clone();
    assert_eq!(
        escalated.len(),
        3,
        "exactly the |2s-1| < 0.3 pairs escalate: {escalated:?}"
    );
    for left_text in &escalated {
        let s0: f32 = left_text.split(", ").next().unwrap().parse().unwrap();
        assert!(
            (2.0 * s0 - 1.0).abs() < 0.3,
            "escalated pair had confidence >= margin: {left_text}"
        );
    }
    assert_eq!(report.stages[0].escalated, 3);
    assert_eq!(report.stages[1].pairs_in, 3);

    // Final scores: stayers keep stage0, escalated pairs take stage1.
    for (p, &(s0, s1)) in report.pairs.iter().zip(&scripted) {
        let expect = if (2.0 * s0 - 1.0).abs() < 0.3 { s1 } else { s0 };
        assert_eq!(report.scores[p.0].to_bits(), expect.to_bits());
    }
    // Matches follow the deepest score.
    assert_eq!(
        pair_set(&report.matches),
        pair_set(&[(0, 0), (1, 0), (4, 0)])
    );
}

#[test]
fn cache_hits_return_bitwise_identical_scores_without_scoring() {
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![
        mk(0, "sony bravia tv 55"),
        mk(1, "canon powershot camera"),
        mk(2, "generic usb cable"),
    ]);
    let right = RecordStore::new(vec![
        mk(10, "sony bravia tv 55 inch"),
        mk(11, "kitchen blender pro"),
    ]);
    let mut pipe = ServePipeline::new(
        Box::new(All),
        vec![
            Stage::new("sim-a", Box::new(StringSim::new())).with_margin(0.9),
            Stage::new("sim-b", Box::new(StringSim::with_threshold(0.6).unwrap())),
        ],
    )
    .unwrap();

    let cold = pipe.run(&left, &right).unwrap();
    assert!(
        cold.stages.iter().map(|s| s.scored).sum::<usize>() > 0,
        "cold run must score"
    );
    let warm = pipe.run(&left, &right).unwrap();

    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "cache must round-trip bitwise");
    }
    for stage in &warm.stages {
        assert_eq!(stage.scored, 0, "warm {}: no matcher calls", stage.name);
        assert_eq!(stage.cache_hits, stage.pairs_in);
        assert_eq!(stage.tokens, 0, "cache hits bill nothing");
    }
    assert_eq!(cold.matches, warm.matches);

    // Clearing the cache brings scoring back.
    pipe.clear_cache();
    let reheat = pipe.run(&left, &right).unwrap();
    assert!(reheat.stages.iter().map(|s| s.scored).sum::<usize>() > 0);
}

#[test]
fn deep_stage_failure_keeps_previous_scores() {
    let scripted = [(0.9f32, 0.0f32), (0.55, 0.0), (0.48, 0.0), (0.05, 0.0)];
    let left = scripted_store(&scripted);
    let right = probe_store();
    let (s0, _) = Scripted::new(0);
    let mut pipe = ServePipeline::new(
        Box::new(All),
        vec![
            Stage::new("s0", Box::new(s0)).with_margin(0.3),
            Stage::new("dead", Box::new(Dead)),
        ],
    )
    .unwrap();
    let report = pipe.run(&left, &right).unwrap();
    assert!(report.stages[1].errored, "dead stage must be flagged");
    // Every pair keeps its stage-0 score — including those that escalated
    // into the dead stage.
    for (p, &(s0, _)) in report.pairs.iter().zip(&scripted) {
        assert_eq!(report.scores[p.0].to_bits(), s0.to_bits());
    }
}

#[test]
fn first_stage_failure_is_fatal() {
    let left = scripted_store(&[(0.5, 0.5)]);
    let right = probe_store();
    let mut pipe =
        ServePipeline::new(Box::new(All), vec![Stage::new("dead", Box::new(Dead))]).unwrap();
    assert!(pipe.run(&left, &right).is_err());
}

#[test]
fn empty_cascade_is_rejected() {
    assert!(ServePipeline::new(Box::new(All), vec![]).is_err());
}

#[test]
fn end_to_end_on_generated_relations() {
    let rels = em_datagen::serve_relations(250, 250, 0.3, 42);
    let left = RecordStore::new(rels.left.clone());
    let right = RecordStore::new(rels.right.clone());
    let blocker = TokenBlocker {
        min_shared: 2,
        max_token_frequency: 0.05,
    };
    // Blocking must keep most true matches at this noise level.
    let truth = pair_set(&rels.matches);
    let candidates = blocker.candidates(&left.records(), &right.records());
    let found = candidates.iter().filter(|c| truth.contains(c)).count();
    assert!(
        found as f64 / truth.len() as f64 > 0.85,
        "blocking recall degenerated: {found}/{}",
        truth.len()
    );

    let mut pipe = ServePipeline::new(
        Box::new(blocker),
        vec![
            Stage::new("strsim", Box::new(StringSim::new())).with_margin(0.6),
            Stage::new("strsim-strict", Box::new(StringSim::with_threshold(0.55).unwrap())),
        ],
    )
    .unwrap();
    let report = pipe.run(&left, &right).unwrap();

    assert_eq!(report.candidates, candidates.len());
    assert_eq!(report.scores.len(), report.pairs.len());
    assert!(report.scores.iter().all(|s| (0.0..=1.0).contains(s)));
    let cand_set = pair_set(&report.pairs);
    assert!(report.matches.iter().all(|m| cand_set.contains(m)));
    assert!(report.reduction_ratio > 0.9, "{}", report.reduction_ratio);

    // The cascade's decisions must carry real signal on this workload.
    let tp = report.matches.iter().filter(|m| truth.contains(m)).count();
    let precision = tp as f64 / report.matches.len().max(1) as f64;
    let recall = tp as f64 / truth.len() as f64;
    assert!(
        precision > 0.5 && recall > 0.4,
        "cascade degenerated: P {precision:.2} R {recall:.2}"
    );
}

#[test]
fn cache_is_stage_scoped() {
    let mut c = ScoreCache::new();
    c.insert(7, 0, 5, 6, 0.25);
    c.insert(7, 1, 5, 6, 0.75);
    assert_eq!(c.get(7, 0, 5, 6), Some(0.25));
    assert_eq!(c.get(7, 1, 5, 6), Some(0.75));
    assert_eq!(c.len(), 2);
}

#[test]
fn serializer_variants_never_share_cached_scores() {
    // Regression: the cache used to be keyed by (stage, left_id, right_id)
    // only, so re-serving the *same record ids* under a different
    // serializer silently replayed scores computed under the old
    // serialization. The serializer fingerprint now participates in the
    // key: a variant run must re-score, not hit.
    let mk = |i: u64, a: &str, b: &str| {
        Record::new(i, vec![AttrValue::from(a), AttrValue::from(b)])
    };
    let recs_l = vec![
        mk(0, "sony bravia tv", "electronics"),
        mk(1, "canon powershot", "cameras"),
    ];
    let recs_r = vec![
        mk(10, "sony bravia tv 55", "electronics"),
        mk(11, "kitchen blender", "appliances"),
    ];
    let mut pipe = sim_pipeline(Box::new(All));

    let left = RecordStore::new(recs_l.clone());
    let right = RecordStore::new(recs_r.clone());
    let plain = pipe.run(&left, &right).unwrap();

    // Same ids, different serialization: `name: value` rendering.
    let names: Vec<String> = vec!["title".into(), "category".into()];
    let named = |recs: &[Record]| {
        RecordStore::with_serializer(
            recs.to_vec(),
            em_core::Serializer::identity(2).with_names(names.clone()),
        )
    };
    let variant = pipe.run(&named(&recs_l), &named(&recs_r)).unwrap();
    let variant_hits: usize = variant.stages.iter().map(|s| s.cache_hits).sum();
    let variant_scored: usize = variant.stages.iter().map(|s| s.scored).sum();
    assert_eq!(
        variant_hits, 0,
        "a different serialization must never answer from the old context"
    );
    assert_eq!(variant_scored, variant.candidates);
    assert!(
        variant
            .scores
            .iter()
            .zip(&plain.scores)
            .any(|(a, b)| a.to_bits() != b.to_bits()),
        "variant run scored identically — the regression would be invisible"
    );

    // Legitimate reuse is untouched: the original stores still answer
    // fully from cache, bitwise.
    let warm = pipe.run(&left, &right).unwrap();
    for s in &warm.stages {
        assert_eq!(s.scored, 0, "warm {}: no matcher calls", s.name);
        assert_eq!(s.cache_hits, s.pairs_in);
    }
    for (a, b) in warm.scores.iter().zip(&plain.scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

fn sim_pipeline(blocker: Box<dyn Blocker>) -> ServePipeline {
    ServePipeline::new(
        blocker,
        vec![Stage::new("sim", Box::new(StringSim::new()))],
    )
    .unwrap()
}

#[test]
fn blocking_state_is_reused_while_stores_are_unchanged() {
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![mk(0, "sony tv"), mk(1, "canon camera")]);
    let right = RecordStore::new(vec![mk(10, "sony tv 55"), mk(11, "blender")]);
    let mut pipe = sim_pipeline(Box::new(All));

    let cold = pipe.run(&left, &right).unwrap();
    assert!(!cold.blocking_reused, "first run cannot reuse");
    let warm = pipe.run(&left, &right).unwrap();
    assert!(warm.blocking_reused, "unchanged stores must reuse");
    assert_eq!(cold.pairs, warm.pairs);
    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Explicit invalidation forces a rebuild with identical results.
    pipe.invalidate_blocking();
    let rebuilt = pipe.run(&left, &right).unwrap();
    assert!(!rebuilt.blocking_reused);
    assert_eq!(cold.pairs, rebuilt.pairs);
}

#[test]
fn append_invalidates_exactly_the_mutated_side() {
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![mk(0, "alpha widget one"), mk(1, "beta widget two")]);
    let mut right = RecordStore::new(vec![mk(10, "alpha widget one"), mk(11, "gamma gadget")]);
    let blocker = TokenBlocker {
        min_shared: 1,
        max_token_frequency: 1.0,
    };
    let mut pipe = sim_pipeline(Box::new(blocker));

    pipe.run(&left, &right).unwrap();
    right.append(vec![mk(12, "beta widget two")]);
    let after = pipe.run(&left, &right).unwrap();
    assert!(
        !after.blocking_reused,
        "a mutated store must invalidate the candidate set"
    );
    // The appended record participates: a fresh pipeline over the grown
    // stores produces exactly the same candidates and scores.
    let mut fresh = sim_pipeline(Box::new(blocker));
    let expect = fresh.run(&left, &right).unwrap();
    assert_eq!(after.pairs, expect.pairs);
    for (a, b) in after.scores.iter().zip(&expect.scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(
        after.pairs.iter().any(|&(_, j)| j == 2),
        "appended record never blocked: {:?}",
        after.pairs
    );

    // Unchanged again: the regrown state is reusable.
    let warm = pipe.run(&left, &right).unwrap();
    assert!(warm.blocking_reused);
    assert_eq!(warm.pairs, after.pairs);
}

#[test]
fn clones_do_not_alias_cached_blocking_state() {
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![mk(0, "alpha one"), mk(1, "beta two")]);
    let right = RecordStore::new(vec![mk(10, "alpha one")]);
    let mut pipe = sim_pipeline(Box::new(All));
    pipe.run(&left, &right).unwrap();

    // A clone has equal content but its own identity; mutating it must
    // not be mistaken for the original, nor the original for it.
    let mut grown = right.clone();
    grown.append(vec![mk(11, "beta two")]);
    let on_clone = pipe.run(&left, &grown).unwrap();
    assert!(!on_clone.blocking_reused);
    assert_eq!(on_clone.candidates, 4);
    let back = pipe.run(&left, &right).unwrap();
    assert!(!back.blocking_reused, "stale state for a different store");
    assert_eq!(back.candidates, 2);
}

#[test]
fn bounded_cache_evicts_and_rescoring_stays_correct() {
    // 6 candidate pairs through a capacity-4 cache: the warm run re-scores
    // the evicted pairs but every score stays bitwise-identical (the
    // matcher is deterministic), and evictions are counted.
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![
        mk(0, "sony bravia tv"),
        mk(1, "canon powershot"),
        mk(2, "usb cable"),
    ]);
    let right = RecordStore::new(vec![mk(10, "sony bravia tv 55"), mk(11, "blender pro")]);
    let mut pipe = sim_pipeline(Box::new(All)).with_cache_capacity(4);

    let cold = pipe.run(&left, &right).unwrap();
    assert_eq!(cold.candidates, 6);
    assert!(
        pipe.cache().evictions() >= 2,
        "6 insertions through capacity 4 must evict"
    );
    assert_eq!(pipe.cache().len(), 4);

    let warm = pipe.run(&left, &right).unwrap();
    let warm_scored: usize = warm.stages.iter().map(|s| s.scored).sum();
    let warm_hits: usize = warm.stages.iter().map(|s| s.cache_hits).sum();
    assert!(warm_scored > 0, "evicted pairs must be re-scored");
    assert!(warm_hits > 0, "retained pairs must hit");
    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits(), "eviction must never change scores");
    }
}

#[test]
fn warm_run_is_bitwise_when_capacity_is_not_exceeded() {
    let mk = |i: u64, t: &str| Record::new(i, vec![AttrValue::from(t)]);
    let left = RecordStore::new(vec![mk(0, "sony bravia tv"), mk(1, "canon powershot")]);
    let right = RecordStore::new(vec![mk(10, "sony bravia tv 55"), mk(11, "blender pro")]);
    // Capacity exactly covers the 4 scored pairs: no evictions, so the
    // warm run answers 100% from cache, like the unbounded cache would.
    let mut pipe = sim_pipeline(Box::new(All)).with_cache_capacity(4);
    let cold = pipe.run(&left, &right).unwrap();
    let warm = pipe.run(&left, &right).unwrap();
    assert_eq!(pipe.cache().evictions(), 0);
    for s in &warm.stages {
        assert_eq!(s.scored, 0);
        assert_eq!(s.cache_hits, s.pairs_in);
    }
    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
