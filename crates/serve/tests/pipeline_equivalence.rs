//! Pipelined ≡ barrier equivalence: the micro-batch executor must
//! reproduce the barrier executor bit for bit — final scores, matches,
//! stage reports (everything except wall-clock seconds), cache contents
//! (including bounded-FIFO eviction survivors), and bills — at any
//! thread cap and any micro-batch size, across healthy runs, deep-stage
//! failures, and fatal stage-0 failures.

use em_blocking::{full_cross_product, Blocker, CandidatePair};
use em_core::{AttrValue, EmError, EvalBatch, LodoSplit, Matcher, Record, Result};
use em_lm::{EncoderClassifier, HashTokenizer, InferencePrecision, ModelConfig};
use em_matchers::StringSim;
use em_nn::threadpool;
use em_serve::{
    Executor, FrozenSlm, RecordStore, ServeConfig, ServePipeline, ServeReport, Stage,
};
use proptest::prelude::*;

/// Pairs everything with everything (tiny-test blocker).
struct All;

impl Blocker for All {
    fn candidates_indexed(
        &self,
        left: &em_blocking::RelationIndex,
        right: &em_blocking::RelationIndex,
    ) -> Vec<CandidatePair> {
        (0..left.len())
            .flat_map(|i| (0..right.len()).map(move |j| (i, j)))
            .collect()
    }

    fn candidates(&self, left: &[Record], right: &[Record]) -> Vec<CandidatePair> {
        full_cross_product(left, right)
    }
}

/// Deterministic pair-level score: an FNV-style hash of both serialized
/// sides plus a per-stage salt, mapped into [0, 1]. Batch-composition
/// independent by construction, so any executor schedule must reproduce
/// it exactly.
fn hash_score(left: &str, right: &str, salt: u64) -> f32 {
    let mut h = salt ^ 0xcbf2_9ce4_8422_2325;
    for b in left.bytes().chain([0u8]).chain(right.bytes()) {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    ((h >> 40) as f64 / (1u64 << 24) as f64) as f32
}

struct HashScore {
    salt: u64,
}

impl Matcher for HashScore {
    fn name(&self) -> String {
        format!("HashScore[{}]", self.salt)
    }
    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(())
    }
    fn predict(&mut self, batch: &EvalBatch) -> Result<Vec<bool>> {
        Ok(self
            .predict_scores(batch)?
            .into_iter()
            .map(|s| s >= 0.5)
            .collect())
    }
    fn predict_scores(&mut self, batch: &EvalBatch) -> Result<Vec<f32>> {
        Ok(batch
            .serialized
            .iter()
            .map(|p| hash_score(&p.left, &p.right, self.salt))
            .collect())
    }
}

/// Always errors (a dead backend with no internal fallback).
struct Dead;

impl Matcher for Dead {
    fn name(&self) -> String {
        "Dead".into()
    }
    fn fit(&mut self, _split: &LodoSplit<'_>, _seed: u64) -> Result<()> {
        Ok(())
    }
    fn predict(&mut self, _batch: &EvalBatch) -> Result<Vec<bool>> {
        Err(EmError::Numeric("backend unreachable".into()))
    }
    fn predict_scores(&mut self, _batch: &EvalBatch) -> Result<Vec<f32>> {
        Err(EmError::Numeric("backend unreachable".into()))
    }
}

fn store(side: &str, n: usize, id_base: u64) -> RecordStore {
    RecordStore::new(
        (0..n)
            .map(|i| {
                Record::new(
                    id_base + i as u64,
                    vec![AttrValue::from(format!("{side} record {i}"))],
                )
            })
            .collect(),
    )
}

/// Margins/salts/prices for a cascade of hash matchers.
fn hash_stages(margins: &[f64]) -> Vec<Stage> {
    margins
        .iter()
        .enumerate()
        .map(|(k, &m)| {
            Stage::new(format!("h{k}"), Box::new(HashScore { salt: k as u64 + 1 }))
                .with_margin(m)
                .priced(0.001 * (k as f64 + 1.0))
        })
        .collect()
}

struct Outcome {
    report: ServeReport,
    cache: Vec<((u64, u32, u64, u64), u32)>,
    evictions: u64,
}

#[allow(clippy::too_many_arguments)]
fn run_with(
    executor: Executor,
    micro_batch: usize,
    batch_size: usize,
    threads: Option<usize>,
    stages: Vec<Stage>,
    cache_cap: Option<usize>,
    left: &RecordStore,
    right: &RecordStore,
) -> Result<Outcome> {
    threadpool::set_max_threads(threads);
    let mut pipe = ServePipeline::new(Box::new(All), stages)
        .unwrap()
        .with_config(ServeConfig {
            batch_size,
            micro_batch,
            executor,
        });
    if let Some(c) = cache_cap {
        pipe = pipe.with_cache_capacity(c);
    }
    let res = pipe.run(left, right);
    threadpool::set_max_threads(None);
    res.map(|report| Outcome {
        report,
        cache: pipe.cache().entries(),
        evictions: pipe.cache().evictions(),
    })
}

/// Full bitwise equivalence minus per-stage `seconds` (the one documented
/// difference: the pipelined executor reports busy time, not wall time).
fn assert_equivalent(want: &Outcome, got: &Outcome, label: &str) {
    assert_eq!(want.report.candidates, got.report.candidates, "{label}");
    assert_eq!(want.report.pairs, got.report.pairs, "{label}");
    assert_eq!(
        want.report.scores.len(),
        got.report.scores.len(),
        "{label}"
    );
    for (i, (a, b)) in want.report.scores.iter().zip(&got.report.scores).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: score {i} diverged");
    }
    assert_eq!(want.report.matches, got.report.matches, "{label}");
    assert_eq!(
        want.report.stages.len(),
        got.report.stages.len(),
        "{label}: stage report count"
    );
    for (a, b) in want.report.stages.iter().zip(&got.report.stages) {
        assert_eq!(a.name, b.name, "{label}");
        assert_eq!(a.pairs_in, b.pairs_in, "{label} {}: pairs_in", a.name);
        assert_eq!(a.scored, b.scored, "{label} {}: scored", a.name);
        assert_eq!(a.cache_hits, b.cache_hits, "{label} {}: cache_hits", a.name);
        assert_eq!(a.escalated, b.escalated, "{label} {}: escalated", a.name);
        assert_eq!(a.errored, b.errored, "{label} {}: errored", a.name);
        assert_eq!(a.degraded, b.degraded, "{label} {}: degraded", a.name);
        assert_eq!(a.tokens, b.tokens, "{label} {}: tokens", a.name);
        assert_eq!(
            a.bill.usd_total().to_bits(),
            b.bill.usd_total().to_bits(),
            "{label} {}: bill",
            a.name
        );
    }
    assert_eq!(want.cache, got.cache, "{label}: cache contents diverged");
    assert_eq!(want.evictions, got.evictions, "{label}: eviction counts");
}

#[test]
fn pipelined_matches_barrier_across_micro_sizes_and_threads() {
    let left = store("left", 24, 0);
    let right = store("right", 9, 1000);
    let margins = [0.7, 0.4, 0.0];
    let whole = 24 * 9;

    let barrier = run_with(
        Executor::Barrier,
        whole,
        16,
        Some(1),
        hash_stages(&margins),
        None,
        &left,
        &right,
    )
    .unwrap();
    assert!(
        barrier.report.stages.len() == 3 && barrier.report.stages[2].pairs_in > 0,
        "workload must exercise the full cascade"
    );

    for micro in [1usize, 7, 64, whole] {
        for cap in [1usize, 2, 8] {
            let piped = run_with(
                Executor::Pipelined,
                micro,
                16,
                Some(cap),
                hash_stages(&margins),
                None,
                &left,
                &right,
            )
            .unwrap();
            assert_equivalent(&piped, &barrier, &format!("micro {micro} cap {cap}"));
        }
    }
}

#[test]
fn warm_pipelined_run_answers_entirely_from_cache() {
    let left = store("left", 12, 0);
    let right = store("right", 6, 500);
    threadpool::set_max_threads(Some(2));
    let mut pipe = ServePipeline::new(Box::new(All), hash_stages(&[0.6, 0.0]))
        .unwrap()
        .with_config(ServeConfig {
            batch_size: 8,
            micro_batch: 7,
            executor: Executor::Pipelined,
        });
    let cold = pipe.run(&left, &right).unwrap();
    let warm = pipe.run(&left, &right).unwrap();
    threadpool::set_max_threads(None);
    for s in &warm.stages {
        assert_eq!(s.scored, 0, "warm {}: matcher was invoked", s.name);
        assert_eq!(s.cache_hits, s.pairs_in, "warm {}: cache misses", s.name);
        assert_eq!(s.tokens, 0, "warm {}: cache hits billed", s.name);
    }
    for (a, b) in cold.scores.iter().zip(&warm.scores) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(cold.matches, warm.matches);
}

#[test]
fn bounded_cache_fifo_eviction_order_is_identical() {
    // 24 pairs × 2 stages through a capacity-10 cache: far more
    // insertions than capacity, so which entries survive depends on the
    // exact FIFO insertion sequence — the sharpest probe of the
    // pipelined merge's canonical ordering.
    let left = store("left", 6, 0);
    let right = store("right", 4, 100);
    let barrier = run_with(
        Executor::Barrier,
        24,
        5,
        Some(1),
        hash_stages(&[0.9, 0.0]),
        Some(10),
        &left,
        &right,
    )
    .unwrap();
    assert!(barrier.evictions > 0, "workload must actually evict");
    for micro in [1usize, 5, 24] {
        let piped = run_with(
            Executor::Pipelined,
            micro,
            5,
            Some(2),
            hash_stages(&[0.9, 0.0]),
            Some(10),
            &left,
            &right,
        )
        .unwrap();
        assert_equivalent(&piped, &barrier, &format!("bounded micro {micro}"));
    }
}

#[test]
fn deep_stage_failure_parity() {
    // Stage 1 is dead: both executors must flag it, keep stage-0 scores,
    // truncate the report list at the errored stage, and leave identical
    // cache contents (the pipelined executor discards any deeper work
    // that overlapped with the failure).
    let left = store("left", 10, 0);
    let right = store("right", 5, 200);
    let stages = || {
        vec![
            Stage::new("h0", Box::new(HashScore { salt: 1 })).with_margin(0.8),
            Stage::new("dead", Box::new(Dead)).with_margin(0.5),
            Stage::new("h2", Box::new(HashScore { salt: 3 })),
        ]
    };
    let barrier = run_with(
        Executor::Barrier,
        50,
        8,
        Some(1),
        stages(),
        None,
        &left,
        &right,
    )
    .unwrap();
    assert_eq!(barrier.report.stages.len(), 2);
    assert!(barrier.report.stages[1].errored);
    for micro in [1usize, 7, 50] {
        let piped = run_with(
            Executor::Pipelined,
            micro,
            8,
            Some(2),
            stages(),
            None,
            &left,
            &right,
        )
        .unwrap();
        assert_equivalent(&piped, &barrier, &format!("dead stage, micro {micro}"));
    }
}

#[test]
fn stage0_failure_is_fatal_in_both_executors() {
    let left = store("left", 4, 0);
    let right = store("right", 3, 50);
    for executor in [Executor::Barrier, Executor::Pipelined] {
        let res = run_with(
            executor,
            2,
            4,
            Some(2),
            vec![Stage::new("dead", Box::new(Dead))],
            None,
            &left,
            &right,
        );
        assert!(res.is_err(), "{executor:?}: stage-0 death must abort");
    }
}

#[test]
fn empty_escalation_truncates_reports_identically() {
    // Margin 0 at stage 0: nothing escalates, so stage 1 must produce no
    // report under either executor.
    let left = store("left", 8, 0);
    let right = store("right", 4, 300);
    let barrier = run_with(
        Executor::Barrier,
        32,
        8,
        Some(1),
        hash_stages(&[0.0, 0.5]),
        None,
        &left,
        &right,
    )
    .unwrap();
    assert_eq!(barrier.report.stages.len(), 1);
    let piped = run_with(
        Executor::Pipelined,
        3,
        8,
        Some(2),
        hash_stages(&[0.0, 0.5]),
        None,
        &left,
        &right,
    )
    .unwrap();
    assert_equivalent(&piped, &barrier, "empty escalation");
}

#[test]
fn slm_stage_pipelined_matches_barrier_in_both_precisions() {
    // A real FrozenSlm tier (untrained tiny weights are deterministic)
    // behind a StringSim gate: the executors must agree bitwise on the
    // model's scores too — in f32 and on the int8 fast path.
    let cfg = ModelConfig {
        vocab: 512,
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 32,
        dropout: 0.0,
        claimed_params_millions: 0.1,
    };
    let tokenizer = HashTokenizer::new(cfg.vocab);
    let model = EncoderClassifier::new(cfg, 3);
    let left = store("gadget alpha", 20, 0);
    let right = store("gadget beta", 10, 400);
    for precision in [InferencePrecision::Full, InferencePrecision::Int8] {
        let stages = || {
            vec![
                Stage::new("strsim", Box::new(StringSim::new())).with_margin(0.95),
                Stage::new(
                    "slm",
                    Box::new(
                        FrozenSlm::new("slm-16d", model.clone(), tokenizer.clone())
                            .with_precision(precision),
                    ),
                )
                .priced(0.002),
            ]
        };
        let barrier = run_with(
            Executor::Barrier,
            200,
            16,
            Some(1),
            stages(),
            None,
            &left,
            &right,
        )
        .unwrap();
        assert!(
            barrier.report.stages[1].scored > 0,
            "{precision:?}: the SLM stage must score something"
        );
        for cap in [2usize, 8] {
            let piped = run_with(
                Executor::Pipelined,
                13,
                16,
                Some(cap),
                stages(),
                None,
                &left,
                &right,
            )
            .unwrap();
            assert_equivalent(&piped, &barrier, &format!("slm {precision:?} cap {cap}"));
        }
    }
}

proptest! {
    /// Randomized cascades: any relation shape, stage count, margin
    /// vector, micro-batch size, and matcher batch size — pipelined at
    /// 2 threads must equal barrier at 1 thread bit for bit.
    #[test]
    fn randomized_pipelined_equals_barrier(
        n_left in 1usize..30,
        n_right in 1usize..10,
        n_stages in 1usize..=3,
        raw_margins in proptest::collection::vec(0.0f64..1.0, 3),
        micro_sel in 0usize..4,
        batch_sel in 0usize..2,
    ) {
        let margins = &raw_margins[..n_stages];
        let micro = [1usize, 7, 64, 10_000][micro_sel];
        let batch_size = [3usize, 512][batch_sel];
        let left = store("left", n_left, 0);
        let right = store("right", n_right, 10_000);
        let barrier = run_with(
            Executor::Barrier, micro, batch_size, Some(1),
            hash_stages(margins), None, &left, &right,
        ).unwrap();
        let piped = run_with(
            Executor::Pipelined, micro, batch_size, Some(2),
            hash_stages(margins), None, &left, &right,
        ).unwrap();
        assert_equivalent(&piped, &barrier, "proptest case");
    }
}
