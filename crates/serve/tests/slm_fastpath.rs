//! FrozenSlm inference fast-path regressions: the shared scoring path
//! behind `predict`/`predict_scores`, bitwise invariance of
//! length-bucketed collation (any batch composition ≡ scoring one pair
//! at a time), thread-count invariance of the parallel tokenizer, and
//! exact-token billing (the stage bills encoded lengths, not a bytes/4
//! guess over text the encoder truncated away).

use em_core::{EvalBatch, Matcher, SerializedPair};
use em_lm::{encode_pair, EncoderClassifier, HashTokenizer, InferencePrecision, ModelConfig};
use em_matchers::StringSim;
use em_nn::threadpool;
use em_serve::{approx_tokens, FrozenSlm, Stage};

fn tiny_config() -> ModelConfig {
    ModelConfig {
        vocab: 512,
        d_model: 16,
        n_layers: 1,
        n_heads: 2,
        ff_mult: 2,
        max_seq: 32,
        dropout: 0.0,
        claimed_params_millions: 0.1,
    }
}

fn slm(precision: InferencePrecision, batch_size: usize) -> FrozenSlm {
    let cfg = tiny_config();
    FrozenSlm::new(
        "slm-test",
        EncoderClassifier::new(cfg.clone(), 7),
        HashTokenizer::new(cfg.vocab),
    )
    .with_precision(precision)
    .with_batch_size(batch_size)
}

/// A batch with widely varied serialized lengths so the length buckets
/// are non-trivial (short pairs really do land in different model
/// batches than long ones).
fn varied_batch(n: usize) -> EvalBatch {
    let serialized = (0..n)
        .map(|i| {
            let left = format!("widget {} {}", i, "alpha ".repeat(i % 11));
            let right = format!("gadget {} {}", i * 7 % 13, "beta ".repeat((i * 3) % 9));
            SerializedPair {
                left: left.into(),
                right: right.into(),
            }
        })
        .collect();
    EvalBatch {
        serialized,
        raw: vec![],
        attr_types: vec![],
    }
}

fn singleton(pair: &SerializedPair) -> EvalBatch {
    EvalBatch {
        serialized: vec![pair.clone()],
        raw: vec![],
        attr_types: vec![],
    }
}

#[test]
fn predict_is_scores_thresholded_bitwise() {
    let batch = varied_batch(37);
    let mut m = slm(InferencePrecision::Full, 8);
    let scores = m.predict_scores(&batch).unwrap();
    let preds = m.predict(&batch).unwrap();
    assert_eq!(preds.len(), scores.len());
    for (p, s) in preds.iter().zip(&scores) {
        assert_eq!(*p, *s >= 0.5, "decision diverged from score surface");
    }
}

#[test]
fn bucketed_batch_scoring_matches_per_pair_scoring() {
    // Scoring the whole batch through length buckets must scatter back
    // bitwise-identical scores to scoring each pair alone — for both
    // precisions. This pins pad-to-batch-max collation, the stable
    // length sort, and the scatter in one assertion.
    let batch = varied_batch(41);
    for precision in [InferencePrecision::Full, InferencePrecision::Int8] {
        let mut bucketed = slm(precision, 8);
        let got = bucketed.predict_scores(&batch).unwrap();
        let mut solo = slm(precision, 8);
        for (i, pair) in batch.serialized.iter().enumerate() {
            let alone = solo.predict_scores(&singleton(pair)).unwrap();
            assert_eq!(
                got[i].to_bits(),
                alone[0].to_bits(),
                "{precision:?}: pair {i} scored differently in a bucket than alone"
            );
        }
    }
}

#[test]
fn scores_are_thread_count_invariant() {
    // The parallel chunked tokenizer merges in chunk order, so the
    // thread cap must never change a single score bit.
    let batch = varied_batch(53);
    threadpool::set_max_threads(Some(1));
    let oracle = slm(InferencePrecision::Full, 16).predict_scores(&batch).unwrap();
    for cap in [2usize, 8] {
        threadpool::set_max_threads(Some(cap));
        let got = slm(InferencePrecision::Full, 16).predict_scores(&batch).unwrap();
        for (i, (a, b)) in oracle.iter().zip(&got).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "cap {cap}: score {i} diverged");
        }
    }
    threadpool::set_max_threads(None);
}

#[test]
fn exact_tokens_are_encoded_valid_lengths() {
    let batch = varied_batch(23);
    let cfg = tiny_config();
    let tokenizer = HashTokenizer::new(cfg.vocab);
    let mut m = slm(InferencePrecision::Full, 8);
    m.predict_scores(&batch).unwrap();
    let exact = m.exact_billed_tokens().expect("FrozenSlm must report exact tokens");
    assert_eq!(exact.len(), batch.len());
    for (i, pair) in batch.serialized.iter().enumerate() {
        let enc = encode_pair(&tokenizer, pair, cfg.max_seq);
        let valid = enc.mask.iter().rposition(|&m| m).map_or(1, |p| p + 1) as u64;
        assert_eq!(exact[i], valid, "pair {i}: billed tokens ≠ encoded length");
    }
}

#[test]
fn truncated_pairs_bill_less_than_the_byte_approximation() {
    // A pair far longer than max_seq: the bytes/4 approximation would
    // bill hundreds of tokens the encoder never consumed; the exact path
    // caps at max_seq.
    let long = SerializedPair {
        left: "industrial vacuum pump stainless ".repeat(30).into(),
        right: "heavy duty compressor unit model ".repeat(30).into(),
    };
    let batch = EvalBatch {
        serialized: vec![long.clone()],
        raw: vec![],
        attr_types: vec![],
    };
    let mut m = slm(InferencePrecision::Full, 8);
    m.predict_scores(&batch).unwrap();
    let exact = m.exact_billed_tokens().unwrap()[0];
    assert!(exact <= tiny_config().max_seq as u64);
    assert!(
        exact < approx_tokens(&long),
        "exact billing ({exact}) should undercut the byte approximation \
         ({}) on truncated text",
        approx_tokens(&long)
    );
}

#[test]
fn stage_bills_exact_for_slm_and_approx_otherwise() {
    let batch = varied_batch(11);
    let approx_total: u64 = batch.serialized.iter().map(approx_tokens).sum();

    // SLM stage: score, then bill — must equal the sum of encoded lengths.
    let mut slm_stage = Stage::new("slm", Box::new(slm(InferencePrecision::Full, 8)));
    slm_stage.matcher.predict_scores(&batch).unwrap();
    let exact_total: u64 = slm_stage
        .matcher
        .exact_billed_tokens()
        .unwrap()
        .iter()
        .sum();
    assert_eq!(slm_stage.bill_exact_tokens(&batch), exact_total);

    // A matcher with no exact accounting falls back to bytes/4.
    let mut sim_stage = Stage::new("sim", Box::new(StringSim::new()));
    sim_stage.matcher.predict_scores(&batch).unwrap();
    assert!(sim_stage.matcher.exact_billed_tokens().is_none());
    assert_eq!(sim_stage.bill_exact_tokens(&batch), approx_total);

    // Stale accounting (different batch size than billed) also falls back.
    let mut stale = Stage::new("slm2", Box::new(slm(InferencePrecision::Full, 8)));
    stale.matcher.predict_scores(&singleton(&batch.serialized[0])).unwrap();
    assert_eq!(stale.bill_exact_tokens(&batch), approx_total);
}

#[test]
fn int8_flip_rate_is_tiny_on_frozen_weights() {
    // The serving-side sanity check behind the bench's smoke assert:
    // int8 inference may flip only a sliver of borderline decisions.
    let batch = varied_batch(97);
    let full = slm(InferencePrecision::Full, 16).predict(&batch).unwrap();
    let int8 = slm(InferencePrecision::Int8, 16).predict(&batch).unwrap();
    let flips = full.iter().zip(&int8).filter(|(a, b)| a != b).count();
    assert!(
        (flips as f64) / (batch.len() as f64) < 0.05,
        "int8 flipped {flips}/{} decisions",
        batch.len()
    );
}
