//! Edit-distance-based similarity: Levenshtein, normalized Levenshtein,
//! Jaro, and Jaro-Winkler.

/// Levenshtein (edit) distance between two strings, computed over Unicode
/// scalar values with a two-row dynamic program (O(min(m,n)) memory).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    // Ensure the inner dimension is the shorter string.
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, &lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Levenshtein similarity in `[0, 1]`: `1 - dist / max_len`;
/// two empty strings are defined to have similarity 1.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched = vec![false; a.len()];
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                a_matched[i] = true;
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched subsequences.
    let a_seq: Vec<char> = a
        .iter()
        .zip(&a_matched)
        .filter_map(|(&c, &m)| m.then_some(c))
        .collect();
    let b_seq: Vec<char> = b
        .iter()
        .zip(&b_used)
        .filter_map(|(&c, &m)| m.then_some(c))
        .collect();
    let transpositions = a_seq.iter().zip(&b_seq).filter(|(x, y)| x != y).count() / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by the length of the common prefix
/// (up to 4 characters) with the standard scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_range_and_identity() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_reference_values() {
        // Canonical examples from Winkler's papers.
        assert!((jaro("MARTHA", "MARHTA") - 0.944_444).abs() < 1e-5);
        assert!((jaro("DIXON", "DICKSONX") - 0.766_667).abs() < 1e-5);
        assert!((jaro("JELLYFISH", "SMELLYFISH") - 0.896_296).abs() < 1e-5);
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961_111).abs() < 1e-5);
        assert!((jaro_winkler("DIXON", "DICKSONX") - 0.813_333).abs() < 1e-5);
    }

    #[test]
    fn jaro_empty_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("ab", "cd"), 0.0);
    }

    proptest! {
        #[test]
        fn levenshtein_is_a_metric(
            a in "[a-d]{0,12}", b in "[a-d]{0,12}", c in "[a-d]{0,12}"
        ) {
            // Symmetry.
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
            // Identity of indiscernibles.
            prop_assert_eq!(levenshtein(&a, &a), 0);
            // Triangle inequality.
            prop_assert!(
                levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c)
            );
        }

        #[test]
        fn similarities_are_bounded(a in ".{0,24}", b in ".{0,24}") {
            for s in [
                levenshtein_similarity(&a, &b),
                jaro(&a, &b),
                jaro_winkler(&a, &b),
            ] {
                prop_assert!((0.0..=1.0).contains(&s), "similarity {s} out of range");
            }
        }

        #[test]
        fn jaro_symmetry(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!((jaro(&a, &b) - jaro(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn winkler_never_below_jaro(a in "[a-e]{0,12}", b in "[a-e]{0,12}") {
            prop_assert!(jaro_winkler(&a, &b) >= jaro(&a, &b) - 1e-12);
        }

        #[test]
        fn identical_strings_have_similarity_one(a in ".{0,24}") {
            prop_assert!((levenshtein_similarity(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((jaro(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
