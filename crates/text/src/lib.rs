//! # em-text — tokenization and string similarity substrate
//!
//! From-scratch implementations of the text primitives the entity matchers
//! rely on:
//!
//! * tokenizers: lowercase word tokens and padded character q-grams
//!   ([`tokenize`]);
//! * edit-based similarities: Levenshtein, Jaro, Jaro-Winkler ([`edit`]);
//! * the Ratcliff/Obershelp gestalt ratio used by the paper's StringSim
//!   baseline (`difflib.SequenceMatcher.ratio` semantics) ([`ratcliff`]);
//! * set/bag similarities: Jaccard, overlap, Dice, Monge-Elkan ([`setsim`]);
//! * corpus-level TF-IDF with sparse cosine similarity ([`tfidf`]);
//! * numeric-attribute similarity and tolerant number extraction
//!   ([`numeric`]).

pub mod edit;
pub mod numeric;
pub mod ratcliff;
pub mod setsim;
pub mod tfidf;
pub mod tokenize;

pub use edit::{jaro, jaro_winkler, levenshtein, levenshtein_similarity};
pub use numeric::{extract_number, relative_similarity, window_similarity};
pub use ratcliff::{matching_blocks, ratcliff_obershelp, MatchBlock};
pub use setsim::{dice, jaccard, monge_elkan, monge_elkan_symmetric, overlap_coefficient};
pub use tfidf::{SparseVec, TfIdf};
pub use tokenize::{qgrams, token_counts, words};
