//! Numeric-attribute similarity and number extraction from dirty strings.
//!
//! ZeroER selects type-appropriate similarity functions; numeric columns
//! (prices, years, ABV, ...) use relative-difference similarity. Benchmark
//! values are frequently numbers embedded in strings ("$ 19.99", "180g"),
//! so a tolerant parser is provided as well.

/// Relative-difference similarity of two numbers in `[0, 1]`:
/// `1 - |a - b| / max(|a|, |b|)`, with exact-zero pairs scoring 1.
pub fn relative_similarity(a: f64, b: f64) -> f64 {
    if a == b {
        return 1.0;
    }
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

/// Absolute-window similarity: 1 within `tol`, linearly decaying to 0 at
/// `3·tol`. Useful for years and other bounded-scale attributes.
pub fn window_similarity(a: f64, b: f64, tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    let d = (a - b).abs();
    if d <= tol {
        1.0
    } else if d >= 3.0 * tol {
        0.0
    } else {
        1.0 - (d - tol) / (2.0 * tol)
    }
}

/// Extracts the first decimal number from a dirty string
/// (`"$ 1,299.99"` → `1299.99`; `"about 12 items"` → `12.0`).
pub fn extract_number(s: &str) -> Option<f64> {
    let mut buf = String::new();
    let mut seen_digit = false;
    let mut seen_dot = false;
    for ch in s.chars() {
        match ch {
            '0'..='9' => {
                buf.push(ch);
                seen_digit = true;
            }
            '.' if seen_digit && !seen_dot => {
                buf.push(ch);
                seen_dot = true;
            }
            ',' if seen_digit => { /* thousands separator: skip */ }
            '-' if !seen_digit && buf.is_empty() => buf.push(ch),
            _ => {
                if seen_digit {
                    break;
                }
                buf.clear();
                seen_dot = false;
            }
        }
    }
    if seen_digit {
        buf.parse().ok()
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relative_similarity_basics() {
        assert_eq!(relative_similarity(10.0, 10.0), 1.0);
        assert_eq!(relative_similarity(0.0, 0.0), 1.0);
        assert!((relative_similarity(10.0, 9.0) - 0.9).abs() < 1e-12);
        assert_eq!(relative_similarity(1.0, -1.0), 0.0);
    }

    #[test]
    fn window_similarity_shape() {
        assert_eq!(window_similarity(2000.0, 2000.0, 1.0), 1.0);
        assert_eq!(window_similarity(2000.0, 2001.0, 1.0), 1.0);
        assert!((window_similarity(2000.0, 2002.0, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(window_similarity(2000.0, 2003.0, 1.0), 0.0);
        assert_eq!(window_similarity(2000.0, 2050.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn window_rejects_zero_tolerance() {
        let _ = window_similarity(1.0, 2.0, 0.0);
    }

    #[test]
    fn extract_number_from_dirty_strings() {
        assert_eq!(extract_number("$ 1,299.99"), Some(1299.99));
        assert_eq!(extract_number("about 12 items"), Some(12.0));
        assert_eq!(extract_number("5.0% abv"), Some(5.0));
        assert_eq!(extract_number("-40 degrees"), Some(-40.0));
        assert_eq!(extract_number("no numbers here"), None);
        assert_eq!(extract_number(""), None);
    }

    #[test]
    fn extract_number_takes_first_number() {
        assert_eq!(extract_number("3 of 10"), Some(3.0));
        assert_eq!(extract_number("v2.5.1"), Some(2.5));
    }

    proptest! {
        #[test]
        fn relative_similarity_bounded(a in -1e6f64..1e6, b in -1e6f64..1e6) {
            let s = relative_similarity(a, b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - relative_similarity(b, a)).abs() < 1e-12);
        }

        #[test]
        fn window_similarity_bounded(a in -1e4f64..1e4, b in -1e4f64..1e4, tol in 0.1f64..100.0) {
            let s = window_similarity(a, b, tol);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn extract_parses_plain_floats(x in -1e6f64..1e6) {
            let rendered = format!("{:.3}", x);
            let parsed = extract_number(&rendered).unwrap();
            prop_assert!((parsed - x).abs() < 1e-2);
        }
    }
}
