//! Ratcliff/Obershelp "gestalt pattern matching" similarity — the algorithm
//! behind Python's `difflib.SequenceMatcher.ratio()`, which the paper's
//! StringSim baseline uses with a 0.5 threshold.
//!
//! The similarity is `2·M / (|a| + |b|)` where `M` is the total number of
//! matching characters found by recursively locating the longest matching
//! block and then matching the regions to its left and right.

/// A matching block: `a[a_start..a_start+len] == b[b_start..b_start+len]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchBlock {
    /// Start in the first sequence.
    pub a_start: usize,
    /// Start in the second sequence.
    pub b_start: usize,
    /// Block length.
    pub len: usize,
}

/// Finds the longest matching block between `a[alo..ahi]` and `b[blo..bhi]`,
/// preferring the earliest in `a`, then earliest in `b` (difflib semantics,
/// junk-free).
fn longest_match(
    a: &[char],
    b: &[char],
    alo: usize,
    ahi: usize,
    blo: usize,
    bhi: usize,
) -> MatchBlock {
    let mut best = MatchBlock {
        a_start: alo,
        b_start: blo,
        len: 0,
    };
    // j2len[j] = length of longest match ending at a[i], b[j].
    let mut j2len = vec![0usize; bhi.saturating_sub(blo)];
    let mut new_j2len = vec![0usize; j2len.len()];
    #[allow(clippy::needless_range_loop)] // index arithmetic spans both sequences
    for i in alo..ahi {
        for (jj, slot) in new_j2len.iter_mut().enumerate() {
            let j = blo + jj;
            if a[i] == b[j] {
                let k = if jj == 0 { 0 } else { j2len[jj - 1] } + 1;
                *slot = k;
                if k > best.len {
                    best = MatchBlock {
                        a_start: i + 1 - k,
                        b_start: j + 1 - k,
                        len: k,
                    };
                }
            } else {
                *slot = 0;
            }
        }
        std::mem::swap(&mut j2len, &mut new_j2len);
    }
    best
}

/// All matching blocks between `a` and `b` in order, following the
/// Ratcliff/Obershelp recursion (implemented with an explicit stack).
pub fn matching_blocks(a: &str, b: &str) -> Vec<MatchBlock> {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut blocks = Vec::new();
    let mut stack = vec![(0usize, a.len(), 0usize, b.len())];
    while let Some((alo, ahi, blo, bhi)) = stack.pop() {
        if alo >= ahi || blo >= bhi {
            continue;
        }
        let m = longest_match(&a, &b, alo, ahi, blo, bhi);
        if m.len > 0 {
            blocks.push(m);
            stack.push((alo, m.a_start, blo, m.b_start));
            stack.push((m.a_start + m.len, ahi, m.b_start + m.len, bhi));
        }
    }
    blocks.sort_by_key(|m| (m.a_start, m.b_start));
    blocks
}

/// The Ratcliff/Obershelp similarity ratio in `[0, 1]`
/// (`difflib.SequenceMatcher(None, a, b).ratio()` without autojunk).
///
/// Two empty strings have ratio 1.
pub fn ratcliff_obershelp(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la + lb == 0 {
        return 1.0;
    }
    let matched: usize = matching_blocks(a, b).iter().map(|m| m.len).sum();
    2.0 * matched as f64 / (la + lb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn difflib_reference_values() {
        // Values cross-checked against Python difflib.
        assert!((ratcliff_obershelp("abcd", "bcde") - 0.75).abs() < 1e-12);
        // SequenceMatcher(None, " abcd", "abcd abcd").ratio() == 0.7142857...
        assert!((ratcliff_obershelp(" abcd", "abcd abcd") - 10.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn identical_strings_score_one() {
        assert_eq!(ratcliff_obershelp("hello world", "hello world"), 1.0);
        assert_eq!(ratcliff_obershelp("", ""), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero() {
        assert_eq!(ratcliff_obershelp("aaa", "bbb"), 0.0);
        assert_eq!(ratcliff_obershelp("", "x"), 0.0);
    }

    #[test]
    fn blocks_are_real_matches() {
        let a = "the quick brown fox";
        let b = "quick brown foxes";
        let ac: Vec<char> = a.chars().collect();
        let bc: Vec<char> = b.chars().collect();
        for m in matching_blocks(a, b) {
            assert!(m.len > 0);
            assert_eq!(
                &ac[m.a_start..m.a_start + m.len],
                &bc[m.b_start..m.b_start + m.len]
            );
        }
    }

    #[test]
    fn longest_block_found_first() {
        let blocks = matching_blocks("xxABCDEFxx", "yyABCDEFyy");
        let max = blocks.iter().map(|m| m.len).max().unwrap();
        assert_eq!(max, 6); // "ABCDEF"
    }

    proptest! {
        #[test]
        fn ratio_is_bounded(a in "[a-d]{0,16}", b in "[a-d]{0,16}") {
            let r = ratcliff_obershelp(&a, &b);
            prop_assert!((0.0..=1.0).contains(&r));
        }

        #[test]
        fn self_similarity_is_one(a in ".{0,24}") {
            prop_assert!((ratcliff_obershelp(&a, &a) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn matched_chars_bounded_by_shorter(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let m: usize = matching_blocks(&a, &b).iter().map(|x| x.len).sum();
            prop_assert!(m <= a.chars().count().min(b.chars().count()));
        }

        #[test]
        fn blocks_do_not_overlap_in_a(a in "[a-c]{0,12}", b in "[a-c]{0,12}") {
            let blocks = matching_blocks(&a, &b);
            for w in blocks.windows(2) {
                prop_assert!(w[0].a_start + w[0].len <= w[1].a_start);
                prop_assert!(w[0].b_start + w[0].len <= w[1].b_start);
            }
        }
    }
}
