//! Set- and bag-based token similarities: Jaccard, overlap coefficient,
//! Dice, and Monge-Elkan (hybrid token/edit similarity).

use crate::edit::jaro_winkler;
use std::collections::HashSet;

fn token_set(tokens: &[String]) -> HashSet<&str> {
    tokens.iter().map(|s| s.as_str()).collect()
}

/// Jaccard similarity of two token multisets, computed on their supports:
/// `|A ∩ B| / |A ∪ B|`; two empty sets are defined to have similarity 1.
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    let sa = token_set(a);
    let sb = token_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Overlap coefficient: `|A ∩ B| / min(|A|, |B|)`; 1 when both empty,
/// 0 when exactly one is empty.
pub fn overlap_coefficient(a: &[String], b: &[String]) -> f64 {
    let sa = token_set(a);
    let sb = token_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

/// Sørensen–Dice coefficient: `2·|A ∩ B| / (|A| + |B|)`.
pub fn dice(a: &[String], b: &[String]) -> f64 {
    let sa = token_set(a);
    let sb = token_set(b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    2.0 * inter as f64 / (sa.len() + sb.len()) as f64
}

/// Monge-Elkan similarity: for each token of `a`, the best Jaro-Winkler
/// match in `b`, averaged. Asymmetric by definition; use
/// [`monge_elkan_symmetric`] for a symmetric variant.
pub fn monge_elkan(a: &[String], b: &[String]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let total: f64 = a
        .iter()
        .map(|ta| {
            b.iter()
                .map(|tb| jaro_winkler(ta, tb))
                .fold(0.0f64, f64::max)
        })
        .sum();
    total / a.len() as f64
}

/// Symmetric Monge-Elkan: the mean of both directions.
pub fn monge_elkan_symmetric(a: &[String], b: &[String]) -> f64 {
    0.5 * (monge_elkan(a, b) + monge_elkan(b, a))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::words;
    use proptest::prelude::*;

    fn toks(s: &str) -> Vec<String> {
        words(s)
    }

    #[test]
    fn jaccard_hand_computed() {
        // {a,b,c} vs {b,c,d}: inter 2, union 4.
        assert!((jaccard(&toks("a b c"), &toks("b c d")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_empty_conventions() {
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&toks("a"), &[]), 0.0);
    }

    #[test]
    fn overlap_uses_smaller_set() {
        // {a,b} vs {a,b,c,d}: inter 2, min size 2 → 1.0.
        assert_eq!(overlap_coefficient(&toks("a b"), &toks("a b c d")), 1.0);
        assert_eq!(overlap_coefficient(&toks("a"), &[]), 0.0);
    }

    #[test]
    fn dice_hand_computed() {
        // {a,b} vs {b,c}: 2*1/(2+2) = 0.5.
        assert!((dice(&toks("a b"), &toks("b c")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monge_elkan_rewards_near_matches() {
        let a = toks("nikon coolpix");
        let b = toks("nikn coolpix"); // typo in first token
        let s = monge_elkan(&a, &b);
        assert!(s > 0.9, "near-identical token lists should score high: {s}");
        assert!(s < 1.0);
    }

    #[test]
    fn monge_elkan_empty_conventions() {
        assert_eq!(monge_elkan(&[], &[]), 1.0);
        assert_eq!(monge_elkan(&toks("a"), &[]), 0.0);
        assert_eq!(monge_elkan(&[], &toks("a")), 0.0);
    }

    #[test]
    fn symmetric_variant_is_symmetric() {
        let a = toks("one two three");
        let b = toks("three four");
        let s1 = monge_elkan_symmetric(&a, &b);
        let s2 = monge_elkan_symmetric(&b, &a);
        assert!((s1 - s2).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn all_set_sims_bounded(a in "[a-d ]{0,24}", b in "[a-d ]{0,24}") {
            let (ta, tb) = (toks(&a), toks(&b));
            for s in [
                jaccard(&ta, &tb),
                overlap_coefficient(&ta, &tb),
                dice(&ta, &tb),
                monge_elkan(&ta, &tb),
                monge_elkan_symmetric(&ta, &tb),
            ] {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "{s}");
            }
        }

        #[test]
        fn jaccard_symmetric(a in "[a-d ]{0,24}", b in "[a-d ]{0,24}") {
            let (ta, tb) = (toks(&a), toks(&b));
            prop_assert!((jaccard(&ta, &tb) - jaccard(&tb, &ta)).abs() < 1e-12);
        }

        #[test]
        fn self_similarity_is_one(a in "[a-d ]{1,24}") {
            let ta = toks(&a);
            prop_assert!((jaccard(&ta, &ta) - 1.0).abs() < 1e-12);
            prop_assert!((dice(&ta, &ta) - 1.0).abs() < 1e-12);
            prop_assert!((monge_elkan(&ta, &ta) - 1.0).abs() < 1e-12);
        }

        #[test]
        fn dice_dominates_jaccard(a in "[a-d ]{0,24}", b in "[a-d ]{0,24}") {
            // Dice = 2J/(1+J) >= J for J in [0,1].
            let (ta, tb) = (toks(&a), toks(&b));
            prop_assert!(dice(&ta, &tb) + 1e-12 >= jaccard(&ta, &tb));
        }
    }
}
