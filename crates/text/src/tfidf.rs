//! TF-IDF weighting and cosine similarity over a corpus vocabulary.
//!
//! Used by ZeroER's similarity vectors (soft TF-IDF features), by the
//! canopy blocking technique, and as a general-purpose document similarity.

use std::collections::HashMap;

/// A corpus-level TF-IDF model: document frequencies learned from a corpus
/// of token lists, then used to embed documents as sparse weighted vectors.
#[derive(Debug, Clone)]
pub struct TfIdf {
    doc_freq: HashMap<String, usize>,
    n_docs: usize,
}

/// A sparse TF-IDF vector: `(term id within this model, weight)` pairs
/// sorted by term id, L2-normalized unless the document was empty.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u64, f64)>,
}

impl SparseVec {
    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// L2 norm (1.0 for non-empty normalized vectors, 0.0 when empty).
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector (merge join on term ids).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let mut i = 0;
        let mut j = 0;
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            match self.entries[i].0.cmp(&other.entries[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.entries[i].1 * other.entries[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

fn term_id(term: &str) -> u64 {
    // FNV-1a over bytes: stable, fast, adequate for term identification.
    term.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

impl TfIdf {
    /// Fits document frequencies over a corpus of tokenized documents.
    pub fn fit<'a, I>(corpus: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0;
        for doc in corpus {
            n_docs += 1;
            let mut seen: Vec<&String> = doc.iter().collect();
            seen.sort_unstable();
            seen.dedup();
            for t in seen {
                *doc_freq.entry(t.clone()).or_insert(0) += 1;
            }
        }
        TfIdf { doc_freq, n_docs }
    }

    /// Number of documents the model was fitted on.
    pub fn corpus_size(&self) -> usize {
        self.n_docs
    }

    /// Smoothed inverse document frequency of a term:
    /// `ln((1 + N) / (1 + df)) + 1`, so unseen terms get the highest weight.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        ((1.0 + self.n_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Embeds a tokenized document as an L2-normalized sparse TF-IDF vector.
    pub fn embed(&self, tokens: &[String]) -> SparseVec {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in tokens {
            *counts.entry(t.as_str()).or_insert(0) += 1;
        }
        let mut entries: Vec<(u64, f64)> = counts
            .into_iter()
            .map(|(t, c)| (term_id(t), c as f64 * self.idf(t)))
            .collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        // Hash collisions would create duplicate ids; merge them.
        entries.dedup_by(|next, prev| {
            if prev.0 == next.0 {
                prev.1 += next.1;
                true
            } else {
                false
            }
        });
        let norm = entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for e in &mut entries {
                e.1 /= norm;
            }
        }
        SparseVec { entries }
    }

    /// Cosine similarity between two tokenized documents in `[0, 1]`;
    /// 1 when both are empty, 0 when exactly one is.
    pub fn cosine(&self, a: &[String], b: &[String]) -> f64 {
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let va = self.embed(a);
        let vb = self.embed(b);
        va.dot(&vb).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::words;
    use proptest::prelude::*;

    fn corpus() -> Vec<Vec<String>> {
        [
            "the quick brown fox",
            "the lazy dog",
            "quick quick dog",
            "fox and dog",
        ]
        .iter()
        .map(|s| words(s))
        .collect()
    }

    #[test]
    fn fit_counts_documents() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        assert_eq!(model.corpus_size(), 4);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        // "dog" appears in 3 docs, "brown" in 1 → brown is rarer and heavier.
        assert!(model.idf("brown") > model.idf("dog"));
        // Unseen terms get the maximum idf.
        assert!(model.idf("zebra") > model.idf("brown"));
    }

    #[test]
    fn embeddings_are_normalized() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        let v = model.embed(&words("quick brown fox"));
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(model.embed(&[]).nnz(), 0);
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        let a = words("quick brown fox");
        assert!((model.cosine(&a, &a) - 1.0).abs() < 1e-12);
        let b = words("lazy dog");
        assert_eq!(model.cosine(&words("quick"), &b), 0.0);
        assert_eq!(model.cosine(&[], &[]), 1.0);
        assert_eq!(model.cosine(&a, &[]), 0.0);
    }

    #[test]
    fn shared_rare_term_beats_shared_common_term() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        // Pairs sharing the rare "brown" vs pairs sharing the common "dog",
        // with one extra distinct token on each side.
        let s_rare = model.cosine(&words("brown alpha"), &words("brown beta"));
        let s_common = model.cosine(&words("dog alpha"), &words("dog beta"));
        assert!(s_rare > s_common);
    }

    #[test]
    fn sparse_dot_merge_join() {
        let docs = corpus();
        let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
        let model = TfIdf::fit(refs);
        let va = model.embed(&words("quick fox"));
        let vb = model.embed(&words("fox dog"));
        let d = va.dot(&vb);
        assert!(d > 0.0 && d < 1.0);
        assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn cosine_bounded_and_symmetric(a in "[a-e ]{0,30}", b in "[a-e ]{0,30}") {
            let docs = corpus();
            let refs: Vec<&[String]> = docs.iter().map(|d| d.as_slice()).collect();
            let model = TfIdf::fit(refs);
            let (ta, tb) = (words(&a), words(&b));
            let s = model.cosine(&ta, &tb);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - model.cosine(&tb, &ta)).abs() < 1e-12);
        }
    }
}
