//! Tokenizers: whitespace/alphanumeric word tokens and character q-grams.
//!
//! These are the building blocks for token-based similarity measures
//! (Jaccard, TF-IDF cosine, Monge-Elkan) and for the blocking substrate.

/// Splits a string into lowercase alphanumeric word tokens.
///
/// A token is a maximal run of alphanumeric characters; everything else is a
/// separator. This matches the standard preprocessing in EM toolkits
/// (Magellan's `alphanumeric` tokenizer).
pub fn words(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for ch in s.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Character q-grams of the lowercase input (over the raw character stream,
/// whitespace included), with `#` padding on both ends as is conventional
/// for q-gram blocking.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let padded: Vec<char> = std::iter::repeat_n('#', q - 1)
        .chain(s.chars().flat_map(|c| c.to_lowercase()))
        .chain(std::iter::repeat_n('#', q - 1))
        .collect();
    if padded.len() < q {
        return Vec::new();
    }
    padded
        .windows(q)
        .map(|w| w.iter().collect::<String>())
        .collect()
}

/// Counts distinct tokens, returning `(token, count)` pairs sorted by token.
pub fn token_counts(tokens: &[String]) -> Vec<(String, usize)> {
    let mut sorted: Vec<&String> = tokens.iter().collect();
    sorted.sort_unstable();
    let mut out: Vec<(String, usize)> = Vec::new();
    for t in sorted {
        match out.last_mut() {
            Some((prev, c)) if prev == t => *c += 1,
            _ => out.push((t.clone(), 1)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn words_split_on_punctuation_and_lowercase() {
        assert_eq!(
            words("Sony DSLR-A100, 10.2MP!"),
            vec!["sony", "dslr", "a100", "10", "2mp"]
        );
    }

    #[test]
    fn words_of_empty_and_symbolic_strings() {
        assert!(words("").is_empty());
        assert!(words("--- !!! ---").is_empty());
    }

    #[test]
    fn qgrams_pad_with_hashes() {
        assert_eq!(qgrams("ab", 2), vec!["#a", "ab", "b#"]);
    }

    #[test]
    fn qgrams_of_empty_string() {
        // Only padding remains: "#" windows.
        assert_eq!(qgrams("", 2), vec!["##"]);
        assert!(qgrams("", 1).is_empty());
    }

    #[test]
    fn unigrams_are_characters() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }

    #[test]
    fn token_counts_aggregate() {
        let toks = words("a b a c b a");
        let counts = token_counts(&toks);
        assert_eq!(
            counts,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
    }

    proptest! {
        #[test]
        fn words_are_lowercase_alphanumeric(s in ".{0,64}") {
            for t in words(&s) {
                prop_assert!(!t.is_empty());
                prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
                prop_assert_eq!(t.to_lowercase(), t.clone());
            }
        }

        #[test]
        fn qgram_count_formula(s in "[a-z ]{0,32}", q in 1usize..5) {
            let grams = qgrams(&s, q);
            let n = s.chars().count();
            // With (q-1) pad on each side there are n + q - 1 windows,
            // except when that underflows to below zero.
            let expect = (n + q - 1).saturating_sub(q - 1) + (q - 1);
            let expect = if n + 2 * (q - 1) < q { 0 } else { expect };
            prop_assert_eq!(grams.len(), expect);
        }

        #[test]
        fn token_counts_sum_to_token_count(s in "[a-c ]{0,32}") {
            let toks = words(&s);
            let total: usize = token_counts(&toks).iter().map(|(_, c)| c).sum();
            prop_assert_eq!(total, toks.len());
        }
    }
}
