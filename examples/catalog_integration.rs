//! Cloud data-integration scenario (the paper's AWS Glue use case,
//! Section 2.1): two vendor catalogs arrive with no labels, no reliable
//! column names, and no type information. The pipeline is the one the
//! paper positions its matchers inside:
//!
//! 1. **blocking** prunes the `left × right` cross product to a candidate
//!    set;
//! 2. a **cross-dataset matcher** (fine-tuned on unrelated transfer data)
//!    classifies the candidates — zero target labels involved.
//!
//! ```sh
//! cargo run --release --example catalog_integration
//! ```

use cross_dataset_em::blocking::metrics::quality;
use cross_dataset_em::blocking::{pair_set, Blocker, TokenBlocker};
use cross_dataset_em::prelude::*;
use em_core::{EvalBatch, Record, RecordPair, Serializer};

fn main() {
    // Two "vendor catalogs": the left/right presentations of the WAAM
    // electronics benchmark stand in for Walmart- and Amazon-style feeds.
    let bench = cross_dataset_em::datagen::generate(DatasetId::Waam, 7);
    let n = 400;
    let left: Vec<Record> = bench
        .pairs
        .iter()
        .take(n)
        .map(|p| p.pair.left.clone())
        .collect();
    let right: Vec<Record> = bench
        .pairs
        .iter()
        .take(n)
        .map(|p| p.pair.right.clone())
        .collect();
    let true_matches: Vec<(usize, usize)> = bench
        .pairs
        .iter()
        .take(n)
        .enumerate()
        .filter_map(|(i, p)| p.label.then_some((i, i)))
        .collect();
    println!(
        "catalogs: {} x {} records, {} true matches, cross product = {} pairs",
        left.len(),
        right.len(),
        true_matches.len(),
        left.len() * right.len()
    );

    // Step 1: blocking.
    let blocker = TokenBlocker {
        min_shared: 2,
        ..Default::default()
    };
    let candidates = blocker.candidates(&left, &right);
    let q = quality(&candidates, &true_matches, left.len(), right.len());
    println!(
        "blocking: {} candidates | pair completeness {:.1}% | reduction ratio {:.1}%",
        candidates.len(),
        q.pair_completeness * 100.0,
        q.reduction_ratio * 100.0
    );

    // Step 2: a cross-dataset matcher fine-tuned on *other* domains.
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let corpus = PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(6_000, 0),
    };
    let split = lodo_split(&suite, DatasetId::Waam).expect("WAAM split");
    let mut matcher = AnyMatch::pretrained(AnyMatchBackbone::Llama32, &corpus);
    matcher
        .fit(&split, 0)
        .expect("fine-tuning on transfer data");

    // Classify the candidate set (values-only serialization).
    let ser = Serializer::identity(bench.arity());
    let raw: Vec<RecordPair> = candidates
        .iter()
        .map(|&(i, j)| RecordPair::new(left[i].clone(), right[j].clone()))
        .collect();
    let batch = EvalBatch {
        serialized: raw.iter().map(|p| ser.pair(p)).collect(),
        raw,
        attr_types: bench.attr_types.clone(),
    };
    let preds = matcher.predict(&batch).expect("prediction");

    // Evaluate end-to-end: a candidate is correct if predicted-match and
    // truly matching.
    let truth = pair_set(&true_matches);
    let mut tp = 0;
    let mut fp = 0;
    for (cand, &pred) in candidates.iter().zip(&preds) {
        if pred {
            if truth.contains(cand) {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    let fn_ = true_matches.len() - tp;
    let precision = tp as f64 / (tp + fp).max(1) as f64;
    let recall = tp as f64 / (tp + fn_).max(1) as f64;
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    println!(
        "end-to-end pipeline: precision {:.1}% | recall {:.1}% | F1 {:.1}",
        precision * 100.0,
        recall * 100.0,
        f1 * 100.0
    );
    println!("no WAAM label, column name, or type was used at any point.");
}
