//! Deployment-cost planner (the paper's Section 4.2.2 in tool form): given
//! a matching workload and a budget, ranks every matcher by monthly cost
//! and picks the best affordable one — the decision a team building a
//! cloud EM service actually has to make.
//!
//! ```sh
//! cargo run --release --example cost_planner
//! ```

use cross_dataset_em::cost::{best_balance, best_within_budget, table6, TradeoffPoint};
use cross_dataset_em::hardware::{deploy, Machine, TABLE5_MODELS};

/// F1 means from the paper's Table 3 (swap in your own `table3_f1` run).
fn f1_of(label: &str) -> Option<f64> {
    Some(match label {
        "MatchGPT [GPT-4]" => 87.4,
        "MatchGPT [SOLAR]" => 74.0,
        "MatchGPT [Beluga2]" => 78.7,
        "MatchGPT [GPT-3.5-Turbo]" => 66.0,
        "MatchGPT [Mixtral-8x7B]" => 73.3,
        "MatchGPT [GPT-4o-Mini]" => 83.9,
        "Unicorn[DeBERTa]" => 81.0,
        "AnyMatch[LLaMA3.2]" => 87.5,
        "AnyMatch[T5]" => 78.6,
        "AnyMatch[GPT-2]" => 81.5,
        "Ditto[Bert]" => 72.9,
        _ => return None,
    })
}

fn main() {
    // Workload: 50M candidate pairs/month, ~120 tokens per serialized pair.
    let pairs_per_month: f64 = 50_000_000.0;
    let tokens_per_pair: f64 = 120.0;
    let monthly_tokens = pairs_per_month * tokens_per_pair;
    println!(
        "workload: {:.0}M pairs/month × {tokens_per_pair} tokens = {:.1}B tokens/month\n",
        pairs_per_month / 1e6,
        monthly_tokens / 1e9
    );

    // Costs from the hardware simulator's throughputs.
    let node = Machine::hpc_node();
    let throughputs: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|m| (m.name, deploy(m, &node).tokens_per_s))
        .collect();
    let mut points = Vec::new();
    println!(
        "{:<26} {:>12} {:>14} {:>7}   scenario",
        "matcher", "$/1K tok", "$/month", "F1"
    );
    for row in table6(&throughputs) {
        let Some(f1) = f1_of(&row.label) else {
            continue;
        };
        let monthly = row.usd_per_1k_tokens * monthly_tokens / 1000.0;
        println!(
            "{:<26} {:>12.7} {:>14.2} {:>7.1}   {}",
            row.label,
            row.usd_per_1k_tokens,
            monthly,
            f1,
            row.scenario.label()
        );
        points.push(TradeoffPoint {
            label: row.label,
            x: row.usd_per_1k_tokens,
            f1,
        });
    }

    println!("\nrecommendations:");
    for budget_per_month in [100.0f64, 1_000.0, 100_000.0] {
        let per_1k = budget_per_month / (monthly_tokens / 1000.0);
        match best_within_budget(&points, per_1k) {
            Some(p) => println!(
                "  ≤ ${budget_per_month:>9.0}/month → {} (F1 {:.1}, ~${:.2}/month)",
                p.label,
                p.f1,
                p.x * monthly_tokens / 1000.0
            ),
            None => println!("  ≤ ${budget_per_month:>9.0}/month → nothing affordable"),
        }
    }
    if let Some(p) = best_balance(&points) {
        println!(
            "  overall balance pick: {} — the paper's recommendation when transfer data exists",
            p.label
        );
    }
}
