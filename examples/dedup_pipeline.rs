//! Duplicate detection in an ML pipeline (the paper's second use case,
//! Section 2.1): a single dirty table — here a movie dataset assembled
//! from two feeds — is deduplicated with a *parameter-free* cross-dataset
//! matcher, the kind of cheap primitive a data-cleaning step can afford.
//!
//! Compares StringSim against ZeroER on the same candidate set and shows
//! the precision/recall structure of each.
//!
//! ```sh
//! cargo run --release --example dedup_pipeline
//! ```

use cross_dataset_em::prelude::*;
use em_core::{Confusion, EvalBatch, Serializer};

fn main() {
    // A movie table with duplicate rows from two upstream feeds.
    let bench = cross_dataset_em::datagen::generate(DatasetId::Roim, 3);
    println!(
        "deduplicating a movie table: {} candidate pairs, {} true duplicates",
        bench.pairs.len(),
        bench.positives()
    );

    let ser = Serializer::identity(bench.arity());
    let batch = EvalBatch {
        serialized: bench.pairs.iter().map(|p| ser.pair(&p.pair)).collect(),
        raw: bench.pairs.iter().map(|p| p.pair.clone()).collect(),
        attr_types: bench.attr_types.clone(),
    };
    let labels: Vec<bool> = bench.pairs.iter().map(|p| p.label).collect();

    let mut matchers: Vec<Box<dyn Matcher>> =
        vec![Box::new(StringSim::new()), Box::new(ZeroEr::new())];
    println!(
        "\n{:<12} {:>6} {:>6} {:>6} {:>6}   {:>7} {:>7} {:>6}",
        "matcher", "TP", "FP", "TN", "FN", "prec%", "rec%", "F1"
    );
    for m in matchers.iter_mut() {
        let preds = m.predict(&batch).expect("prediction");
        let c = Confusion::from_predictions(&preds, &labels).expect("aligned predictions");
        println!(
            "{:<12} {:>6} {:>6} {:>6} {:>6}   {:>7.1} {:>7.1} {:>6.1}",
            m.name(),
            c.tp,
            c.fp,
            c.tn,
            c.fn_,
            c.precision() * 100.0,
            c.recall() * 100.0,
            c.f1() * 100.0
        );
    }
    println!(
        "\nZeroER fits a 2-component Gaussian mixture over per-column similarity \
         vectors\nof the *unlabelled* batch — no training data, no threshold to tune."
    );
}
