//! Quickstart: the core loop of the study in ~40 lines — generate the
//! benchmark suite, take a leave-one-dataset-out split, fine-tune a small
//! language model on the ten transfer datasets, and evaluate it on the
//! unseen eleventh.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cross_dataset_em::prelude::*;

fn main() {
    // 1. The 11 benchmark datasets of Table 1 (synthetic, exact statistics).
    let suite = cross_dataset_em::datagen::generate_suite(0);
    println!("generated {} benchmark datasets", suite.len());

    // 2. A pretraining corpus for the model backbone (disjoint from every
    //    benchmark — audited by em_datagen::audit).
    let corpus = PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(6_000, 0),
    };

    // 3. Leave-one-dataset-out: BEER is the unseen target, the other ten
    //    datasets are the transfer pool.
    let split = lodo_split(&suite, DatasetId::Beer).expect("BEER exists");
    println!(
        "target = {} ({} pairs) | transfer pool = {} datasets, {} pairs",
        split.target.id.full_name(),
        split.target.pairs.len(),
        split.transfer.len(),
        split.transfer_pair_count()
    );

    // 4. Evaluate three matchers of increasing sophistication. Two seeds
    //    vary the serialization column order (the paper uses five).
    let cfg = EvalConfig::quick(2, 450);
    let mut matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(StringSim::new()),
        Box::new(ZeroEr::new()),
        Box::new(AnyMatch::pretrained(AnyMatchBackbone::Llama32, &corpus)),
    ];
    println!("\n{:<24} F1 on unseen BEER (mean±std)", "matcher");
    for matcher in matchers.iter_mut() {
        let score =
            evaluate_on_target(matcher.as_mut(), &split, &cfg).expect("evaluation succeeds");
        println!("{:<24} {}", matcher.name(), score.summary());
    }
    println!("\nThe fine-tuned model never saw a BEER example, column name, or type.");
}
