#!/usr/bin/env bash
# Profiles a full LODO evaluation under em-obs tracing and prints the
# per-stage summary (top-10 spans by cumulative time, warnings, metrics),
# then verifies the tracing overhead stays inside the <2% budget.
#
# The JSONL trace lands at EM_TRACE if set, else
# target/em-results/profile_lodo.jsonl. Scale knobs EM_SEEDS / EM_TEST_CAP
# apply (defaults: 2 seeds, 1250-pair cap).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p em-bench --bin profile_lodo

echo "== run profile =="
profile_out="$(./target/release/profile_lodo)"
printf '%s\n' "$profile_out"

# The fused-attention kernel must be visible in the profile: the probe
# stage runs a shape above the span threshold, so the top-span report has
# to contain attn.* spans (and the metrics registry the attn counters).
if ! grep -q "attn\." <<<"$profile_out"; then
    echo "profile is missing attn.* spans/counters"
    exit 1
fi
echo "attn.* spans present in the top-span report"

# Likewise the fused optimizer: the fine-tune probe trains a tiny model,
# so the profile must show optim.* spans (and the finetune.* token
# counters feeding the tokens/s line).
if ! grep -q "optim\." <<<"$profile_out"; then
    echo "profile is missing optim.* spans"
    exit 1
fi
if ! grep -q "finetune\." <<<"$profile_out"; then
    echo "profile is missing finetune.* spans/counters"
    exit 1
fi
echo "optim.* and finetune.* spans present in the top-span report"

# Likewise the zoo inference path: the zoo probe scores a 64-pair batch
# twice with the int8 GEMM enabled, so the metrics registry must show the
# prefix-cache counters and the quantized-GEMM call/flop counters.
if ! grep -q "lm\.prefix" <<<"$profile_out"; then
    echo "profile is missing lm.prefix_* counters"
    exit 1
fi
if ! grep -q "qgemm\." <<<"$profile_out"; then
    echo "profile is missing qgemm.* counters"
    exit 1
fi
echo "lm.prefix_* and qgemm.* counters present in the metrics registry"

echo
echo "== tracing overhead (budget < 2%) =="
./target/release/profile_lodo overhead
