#!/usr/bin/env bash
# Profiles a full LODO evaluation under em-obs tracing and prints the
# per-stage summary (top-10 spans by cumulative time, warnings, metrics),
# then verifies the tracing overhead stays inside the <2% budget.
#
# The JSONL trace lands at EM_TRACE if set, else
# target/em-results/profile_lodo.jsonl. Scale knobs EM_SEEDS / EM_TEST_CAP
# apply (defaults: 2 seeds, 1250-pair cap).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p em-bench --bin profile_lodo

echo "== run profile =="
./target/release/profile_lodo

echo
echo "== tracing overhead (budget < 2%) =="
./target/release/profile_lodo overhead
