#!/usr/bin/env bash
# Profiles the serving pipeline: runs the bench_serve smoke (2k×2k
# relations through blocking → StringSim → SLM → hosted-LLM cascade) and
# verifies the serve.* observability surface is populated — the candidate,
# cache-hit, escalation and match counters the production dashboards
# would graph.
#
# The full 100k×100k measurement is `bench_serve` without --smoke; its
# results are checked in as BENCH_serve.json.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -q -p em-bench --bin bench_serve --bin drift_serve

echo "== serve smoke (2k x 2k) =="
serve_out="$(./target/release/bench_serve target/profile-bench-serve.json --smoke)"
printf '%s\n' "$serve_out"

# The cascade must leave its counter trail: candidates from the blocker,
# scored pairs and escalations from the stage loop, cache hits from the
# warm run, matches from the final thresholding — plus the blocking
# index's own surface: postings interned at build time, tokens removed
# by the document-frequency stop cut, and raw (pre-min_shared) candidate
# touches from the banded probe.
for counter in serve.candidates serve.scored serve.escalated serve.cache_hits \
               serve.matches serve.blocking_reused serve.bucket_pad_saved \
               block.postings block.stopped_tokens block.candidates_raw block.probes; do
    if ! grep -q "$counter" <<<"$serve_out"; then
        echo "profile is missing the $counter counter"
        exit 1
    fi
done
echo "serve.* and block.* counters present in the metrics registry"

# The SLM fast path must actually engage: length-bucketed collation
# reports the padding tokens it avoided, and a zero here means every
# model batch was padded to max_seq — the fast path silently fell back
# to the slow collation.
pad_saved="$(awk '/serve\.bucket_pad_saved/ { print $2 }' <<<"$serve_out")"
if [ -z "$pad_saved" ] || [ "$pad_saved" -eq 0 ]; then
    echo "bucketed collation saved no padding: serve.bucket_pad_saved = ${pad_saved:-missing}"
    exit 1
fi
echo "bucketed collation live: $pad_saved padded tokens avoided"

# The warm run answers entirely from the score cache: the cache-hit
# counter must cover at least one full stage pass over the candidate
# set. `serve.candidates` accumulates across every pipeline run the
# bench performs — barrier A/B, pipelined cold, warm, the f32 baseline
# and the int8 flip-rate run, five in all over the same candidates —
# while only the warm run hits the cache, so one stage pass is a fifth
# of the counter. (The exact per-stage invariant, cache_hits ==
# pairs_in with zero matcher calls, is asserted inside bench_serve.)
cands="$(awk '/serve\.candidates/ { print $2 }' <<<"$serve_out")"
hits="$(awk '/serve\.cache_hits/ { print $2 }' <<<"$serve_out")"
if [ "$hits" -lt "$((cands / 5))" ]; then
    echo "warm run barely hit the cache: $hits hits for $cands candidates"
    exit 1
fi
echo "score cache live: $hits cache hits across $cands blocked candidates"

echo "== drift drill smoke (ramping perturbation rate) =="
drift_out="$(./target/release/drift_serve target/profile-bench-drift.json --smoke)"
printf '%s\n' "$drift_out"

# The perturbation layer must leave its own counter trail alongside the
# serve.* surface: perturbed records plus the per-operator effect
# counters of the drill's noise plan (typo, token drop, null-out). The
# counters ride the same em-obs registry the <2% tracing-overhead budget
# (scripts/profile_lodo.sh) is measured against — no new hot-path cost.
for counter in perturb.records perturb.typos perturb.tokens_dropped \
               perturb.values_nulled serve.candidates serve.escalated; do
    if ! grep -q "$counter" <<<"$drift_out"; then
        echo "drift profile is missing the $counter counter"
        exit 1
    fi
done
echo "perturb.* counters present in the metrics registry"
