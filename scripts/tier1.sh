#!/usr/bin/env bash
# Tier-1 gate: release build + the fast test suite, exactly as CI runs it.
#
# The criterion micro-benchmark harness is behind the opt-in
# `bench-harness` feature of em-bench, so this never compiles criterion;
# run `cargo bench -p em-bench --features bench-harness` separately for
# the micro-benchmarks, or `cargo run --release -p em-bench --bin
# bench_gemm` for the GEMM before/after numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace matters: the repo root is a workspace *and* a package, so a
# bare `cargo build` covers only the root package and would leave the
# em-bench bins this script runs (bench_attention, bench_finetune,
# bench_zoo, bench_serve, chaos_lodo) unbuilt on a fresh target dir.
cargo build --release --workspace
cargo test -q --workspace

# EM_TRACE smoke: the observability integration test must produce a
# non-empty JSONL trace file when the env flag is set. Absolute path:
# cargo runs test binaries with the *package* dir as cwd, so a relative
# EM_TRACE would land under crates/core/.
trace="$PWD/target/tier1-trace.jsonl"
rm -f "$trace"
EM_TRACE="$trace" cargo test -q -p em-core --test obs_integration
test -s "$trace" || { echo "EM_TRACE smoke failed: $trace is empty"; exit 1; }
echo "EM_TRACE smoke: $(wc -l < "$trace") trace records in $trace"

# Fused-attention gates: the kernel-equivalence + thread-parity suite
# (fused kernel vs the naive em_nn::reference oracle at 1/2/8 threads),
# then an attention-bench smoke — a tiny shape that still runs the
# seed-vs-fused equivalence asserts inside the bench harness.
cargo test -q -p em-nn --test attention_equivalence
attn_bench="$PWD/target/tier1-bench-attention.json"
./target/release/bench_attention "$attn_bench" --smoke
test -s "$attn_bench" || { echo "attention bench smoke failed: $attn_bench is empty"; exit 1; }
echo "attention bench smoke: wrote $attn_bench"

# Fused-training-step gates: the optimizer-equivalence + thread-parity
# suite (fused Adam/SGD vs the naive em_nn::reference oracles, bitwise,
# at 1/2/8 threads), the fine-tuning parity suite (pad-to-batch-max vs
# full padding, bitwise; whole training runs at 1/2/8 threads), then a
# fine-tune-bench smoke — a tiny shape that still runs the seed-vs-fused
# equivalence asserts inside the bench harness.
cargo test -q -p em-nn --test optim_equivalence
cargo test -q -p em-lm --test finetune_parity
ft_bench="$PWD/target/tier1-bench-finetune.json"
./target/release/bench_finetune "$ft_bench" --smoke
test -s "$ft_bench" || { echo "finetune bench smoke failed: $ft_bench is empty"; exit 1; }
echo "finetune bench smoke: wrote $ft_bench"

# Inference-path gates: the int8-GEMM equivalence suite (packed VNNI
# path vs the naive quantized oracle, bitwise, incl. thread parity at
# 1/2/8 threads and the f32-restore toggle), the prefix-cache suite
# (cached zoo scoring vs full recompute, bitwise at 1/2/8 threads; int8
# drift/flip-rate bounds on a trained tier), then a zoo-bench smoke — a
# tiny shape that still runs the cached-vs-recompute and int8-drift
# asserts inside the bench harness.
cargo test -q -p em-nn --test qgemm_equivalence
cargo test -q -p em-lm --test prefix_equivalence
zoo_bench="$PWD/target/tier1-bench-zoo.json"
./target/release/bench_zoo "$zoo_bench" --smoke
test -s "$zoo_bench" || { echo "zoo bench smoke failed: $zoo_bench is empty"; exit 1; }
echo "zoo bench smoke: wrote $zoo_bench"

# Serving-pipeline gates: the blocker property suite (sorted/deduped
# subsets of the cross product, pair-completeness floors on generated
# relations — incl. the three PR-7 regression fixes), the
# blocking-equivalence suite (indexed banded-parallel candidates vs the
# sequential em_blocking::reference oracles, bitwise, at 1/2/8 threads,
# incl. index-reuse-after-growth), the cascade invariant suite
# (margin-exact escalation, bitwise cache hits, blocking-state reuse and
# generation invalidation, bounded-cache eviction, deep-stage
# degradation), then blocking- and serve-bench smokes — the blocking one
# re-runs the reference-vs-indexed bitwise asserts on 2k×2k, the serve
# one pushes 2k×2k through the full blocking → StringSim → SLM →
# hosted-LLM cascade with the cost-vs-baseline, warm-cache and
# blocking-reuse asserts live. The serve-inference fast-path gates ride
# here too: the SLM fast-path suite (bucketed collation ≡ per-pair
# scoring bitwise in f32 and int8, thread parity, exact-token billing)
# and the executor-equivalence suite (pipelined micro-batch schedule ≡
# barrier schedule bitwise — scores, reports, cache contents, FIFO
# evictions, bills — across micro-batch sizes, thread caps, and
# dead-stage failures, plus a 128-case randomized property).
cargo test -q -p em-blocking --test blocker_properties
cargo test -q -p em-blocking --test parallel_equivalence
cargo test -q -p em-serve --test cascade_invariants
cargo test -q -p em-serve --test slm_fastpath
cargo test -q -p em-serve --test pipeline_equivalence
block_bench="$PWD/target/tier1-bench-blocking.json"
./target/release/bench_blocking "$block_bench" --smoke
test -s "$block_bench" || { echo "blocking bench smoke failed: $block_bench is empty"; exit 1; }
echo "blocking bench smoke: wrote $block_bench"
serve_bench="$PWD/target/tier1-bench-serve.json"
./target/release/bench_serve "$serve_bench" --smoke
test -s "$serve_bench" || { echo "serve bench smoke failed: $serve_bench is empty"; exit 1; }
echo "serve bench smoke: wrote $serve_bench"

# Chaos smoke: a small LODO sweep through the resilient hosted client at
# a 10% injected-fault rate must complete with zero aborted items and
# metrics bit-identical to the fault-free run, a killed checkpoint must
# resume bitwise, and a dead backend must degrade to the StringSim
# fallback (see crates/bench/src/bin/chaos_lodo.rs for the assertions).
./target/release/chaos_lodo --smoke

# Perturbation-robustness gates: the em-perturb determinism suite (every
# operator bitwise-reproducible given (seed, config), batch-order and
# parallel-chunking independent), the serializer property suite (shuffles
# are permutations, record_into ≡ record, both styles deterministic under
# a fixed seed), then two harness smokes — the sensitivity slice sweeps
# 2 matchers × 3 perturbations and checkpoints every cell, the drift
# drill ramps the perturbation rate over a 2-stage cascade and asserts
# the monotone escalation / rising-spend / stage-0-fatal-free contract.
cargo test -q -p em-perturb --test determinism
cargo test -q -p em-core --test serializer_properties
sens_smoke="$PWD/target/tier1-sensitivity.json"
./target/release/sensitivity "$sens_smoke" --smoke
test -s "$sens_smoke" || { echo "sensitivity smoke failed: $sens_smoke is empty"; exit 1; }
echo "sensitivity smoke: wrote $sens_smoke"
drift_smoke="$PWD/target/tier1-drift.json"
./target/release/drift_serve "$drift_smoke" --smoke
test -s "$drift_smoke" || { echo "drift drill smoke failed: $drift_smoke is empty"; exit 1; }
echo "drift drill smoke: wrote $drift_smoke"

# Benchmark trajectory: regenerate the BENCH_TRAJECTORY.md roll-up from
# the checked-in BENCH_*.json files so the cross-PR perf table never
# drifts from the numbers it summarizes.
./scripts/bench_trajectory.sh
