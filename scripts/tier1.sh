#!/usr/bin/env bash
# Tier-1 gate: release build + the fast test suite, exactly as CI runs it.
#
# The criterion micro-benchmark harness is behind the opt-in
# `bench-harness` feature of em-bench, so this never compiles criterion;
# run `cargo bench -p em-bench --features bench-harness` separately for
# the micro-benchmarks, or `cargo run --release -p em-bench --bin
# bench_gemm` for the GEMM before/after numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
