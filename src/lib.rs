//! # cross-dataset-em
//!
//! A from-scratch Rust reproduction of *"A Deep Dive Into Cross-Dataset
//! Entity Matching with Large and Small Language Models"* (EDBT 2025):
//! the cross-dataset EM task, the "leave-one-dataset-out" evaluation, all
//! eight matcher families, synthetic versions of the 11 benchmark
//! datasets, and the quality/cost trade-off analysis — built on a
//! self-contained neural-network and classical-ML substrate.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `em-core` | records, datasets, serialization, LODO, metrics, the [`core::Matcher`] trait |
//! | [`text`] | `em-text` | tokenizers and string-similarity kernels |
//! | [`ml`] | `em-ml` | logistic regression, GMM/EM, AdaBoost |
//! | [`nn`] | `em-nn` | tensors, attention, transformer blocks, Adam |
//! | [`lm`] | `em-lm` | tiny language models, fine-tuning, prompting, frozen LLM tiers |
//! | [`datagen`] | `em-datagen` | the 11 synthetic benchmarks + pretraining corpus |
//! | [`matchers`] | `em-matchers` | StringSim, ZeroER, Ditto, Unicorn, AnyMatch, Jellyfish, MatchGPT |
//! | [`blocking`] | `em-blocking` | candidate-set generation |
//! | [`hardware`] | `em-hardware` | A100 deployment simulator (Table 5) |
//! | [`cost`] | `em-cost` | price book and trade-off analysis (Table 6, Figures 3/4) |
//! | [`obs`] | `em-obs` | tracing spans/events, metrics registry, run profiles (`EM_TRACE`) |
//! | [`serve`] | `em-serve` | record stores, blocking → confidence-gated matcher cascade, score cache |
//! | [`perturb`] | `em-perturb` | seeded serialization ablations + data-error injection (DESIGN.md §12) |
//!
//! ## Quickstart
//!
//! ```no_run
//! use cross_dataset_em::prelude::*;
//!
//! // Generate the benchmark suite and a pretraining corpus.
//! let suite = cross_dataset_em::datagen::generate_suite(0);
//! let corpus = PretrainCorpus { pairs: cross_dataset_em::datagen::pretrain_corpus(4000, 0) };
//!
//! // Evaluate a matcher on an unseen target under LODO.
//! let split = lodo_split(&suite, DatasetId::Beer).unwrap();
//! let mut matcher = Ditto::pretrained(&corpus);
//! let cfg = EvalConfig::quick(2, 450);
//! let score = evaluate_on_target(&mut matcher, &split, &cfg).unwrap();
//! println!("Ditto on unseen BEER: {}", score.summary());
//! ```

pub use em_blocking as blocking;
pub use em_core as core;
pub use em_cost as cost;
pub use em_datagen as datagen;
pub use em_hardware as hardware;
pub use em_lm as lm;
pub use em_matchers as matchers;
pub use em_ml as ml;
pub use em_nn as nn;
pub use em_obs as obs;
pub use em_perturb as perturb;
pub use em_serve as serve;
pub use em_text as text;

/// The most common imports for downstream users.
pub mod prelude {
    pub use em_core::{
        evaluate_matcher, evaluate_on_target, lodo_split, Benchmark, DatasetId, EvalConfig,
        EvalReport, Matcher, SerializedPair,
    };
    pub use em_lm::{LlmTier, PretrainCorpus};
    pub use em_matchers::{
        AnyMatch, AnyMatchBackbone, DemoStrategy, Ditto, Jellyfish, MatchGpt, StringSim, Unicorn,
        ZeroEr,
    };
    pub use em_serve::{RecordStore, ServePipeline, Stage};
}
