//! End-to-end integration: the full LODO protocol with real matchers on
//! the generated benchmark suite, exercising every crate together.

use cross_dataset_em::prelude::*;
use em_core::{evaluate_on_target, EvalConfig};
use em_lm::PretrainCorpus;

fn suite() -> Vec<em_core::Benchmark> {
    cross_dataset_em::datagen::generate_suite(0)
}

fn small_corpus() -> PretrainCorpus {
    PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(2_000, 0),
    }
}

#[test]
fn parameter_free_matchers_run_the_full_protocol() {
    let suite = suite();
    let cfg = EvalConfig::quick(2, 200);
    for mut matcher in [
        Box::new(StringSim::new()) as Box<dyn Matcher>,
        Box::new(ZeroEr::new()),
    ] {
        let report = evaluate_matcher(matcher.as_mut(), &suite, &cfg).unwrap();
        assert_eq!(report.scores.len(), 11);
        let mean = report.mean_column();
        assert!(
            mean.mean > 0.0 && mean.mean < 100.0,
            "{}: {}",
            report.matcher,
            mean
        );
    }
}

#[test]
fn fine_tuned_matcher_beats_string_baseline_on_beer() {
    let suite = suite();
    let corpus = small_corpus();
    let split = lodo_split(&suite, DatasetId::Beer).unwrap();
    let cfg = EvalConfig::quick(1, 450);
    let mut baseline = StringSim::new();
    let base = evaluate_on_target(&mut baseline, &split, &cfg).unwrap();
    let mut anymatch = AnyMatch::pretrained(AnyMatchBackbone::Llama32, &corpus);
    let tuned = evaluate_on_target(&mut anymatch, &split, &cfg).unwrap();
    assert!(
        tuned.summary().mean > base.summary().mean + 10.0,
        "fine-tuned {} vs baseline {}",
        tuned.summary(),
        base.summary()
    );
}

#[test]
fn evaluation_is_deterministic_end_to_end() {
    let suite = suite();
    let split = lodo_split(&suite, DatasetId::Zoye).unwrap();
    let cfg = EvalConfig::quick(2, 200);
    let corpus = small_corpus();
    let run = || {
        let mut m = Ditto::pretrained(&corpus);
        evaluate_on_target(&mut m, &split, &cfg)
            .unwrap()
            .per_seed_f1
    };
    assert_eq!(run(), run());
}

#[test]
fn jellyfish_brackets_propagate_through_the_report() {
    let suite = suite();
    let corpus = small_corpus();
    let cfg = EvalConfig::quick(1, 120);
    let mut jelly = Jellyfish::pretrained(&corpus);
    let report = evaluate_matcher(&mut jelly, &suite, &cfg).unwrap();
    let seen = report.scores.iter().filter(|s| s.seen_in_training).count();
    assert_eq!(seen, 6, "Jellyfish's six seen datasets must be bracketed");
    // The fair mean skips them.
    let fair = report.fair_mean_column();
    let full = report.mean_column();
    assert!(fair.mean > 0.0);
    assert_ne!(fair.mean, full.mean);
}

#[test]
fn seeds_change_serialization_but_not_the_test_sample() {
    let suite = suite();
    let bench = suite.iter().find(|b| b.id == DatasetId::Itam).unwrap();
    let (b0, l0) = em_core::build_batch(bench, 200, 0);
    let (b1, l1) = em_core::build_batch(bench, 200, 1);
    // Identical sample (labels align pair-by-pair) ...
    assert_eq!(l0, l1);
    assert_eq!(b0.raw.len(), b1.raw.len());
    for (p0, p1) in b0.raw.iter().zip(&b1.raw) {
        assert_eq!(p0.left.id, p1.left.id);
    }
    // ... but different column order in the serialized view.
    assert!(
        b0.serialized
            .iter()
            .zip(&b1.serialized)
            .any(|(a, b)| a.left != b.left),
        "seed must shuffle serialization"
    );
}

#[test]
fn restriction_two_no_column_names_reach_matchers() {
    // The serialized views consist purely of attribute values: none of the
    // internal domain vocabulary for column roles appears.
    let suite = suite();
    let bench = &suite[0];
    let (batch, _) = em_core::build_batch(bench, 50, 0);
    for sp in &batch.serialized {
        for forbidden in ["title:", "brand:", "price:", "COL ", "name="] {
            assert!(!sp.left.contains(forbidden), "{}", sp.left);
            assert!(!sp.right.contains(forbidden), "{}", sp.right);
        }
    }
}
