//! Integration of the blocking substrate with the matchers: the
//! block-then-match pipeline of a real EM system (Section 2.1).

use cross_dataset_em::blocking::metrics::quality;
use cross_dataset_em::blocking::{pair_set, Blocker, QGramBlocker, TokenBlocker};
use cross_dataset_em::prelude::*;
use em_core::{EvalBatch, Record, RecordPair, Serializer};

type Catalogs = (
    em_core::Benchmark,
    Vec<Record>,
    Vec<Record>,
    Vec<(usize, usize)>,
);

fn catalogs(n: usize) -> Catalogs {
    let bench = cross_dataset_em::datagen::generate(DatasetId::Foza, 5);
    let left: Vec<Record> = bench
        .pairs
        .iter()
        .take(n)
        .map(|p| p.pair.left.clone())
        .collect();
    let right: Vec<Record> = bench
        .pairs
        .iter()
        .take(n)
        .map(|p| p.pair.right.clone())
        .collect();
    let truth: Vec<(usize, usize)> = bench
        .pairs
        .iter()
        .take(n)
        .enumerate()
        .filter_map(|(i, p)| p.label.then_some((i, i)))
        .collect();
    (bench, left, right, truth)
}

#[test]
fn token_blocking_keeps_most_matches_and_prunes_hard() {
    let (_, left, right, truth) = catalogs(400);
    let candidates = TokenBlocker::default().candidates(&left, &right);
    let q = quality(&candidates, &truth, left.len(), right.len());
    assert!(
        q.pair_completeness > 0.85,
        "completeness {}",
        q.pair_completeness
    );
    assert!(q.reduction_ratio > 0.8, "reduction {}", q.reduction_ratio);
    // A stricter blocker prunes harder at some completeness cost.
    let strict = TokenBlocker {
        min_shared: 2,
        ..Default::default()
    }
    .candidates(&left, &right);
    let qs = quality(&strict, &truth, left.len(), right.len());
    assert!(qs.reduction_ratio > q.reduction_ratio);
    assert!(qs.pair_completeness <= q.pair_completeness);
}

#[test]
fn qgram_blocking_is_a_valid_alternative() {
    let (_, left, right, truth) = catalogs(300);
    let candidates = QGramBlocker::default().candidates(&left, &right);
    let q = quality(&candidates, &truth, left.len(), right.len());
    assert!(
        q.pair_completeness > 0.7,
        "completeness {}",
        q.pair_completeness
    );
    assert!(q.reduction_ratio > 0.5, "reduction {}", q.reduction_ratio);
}

#[test]
fn block_then_match_pipeline_produces_sensible_f1() {
    let (bench, left, right, truth) = catalogs(300);
    let candidates = TokenBlocker {
        min_shared: 2,
        ..Default::default()
    }
    .candidates(&left, &right);
    assert!(!candidates.is_empty());

    // ZeroER (parameter-free) classifies the candidate batch.
    let ser = Serializer::identity(bench.arity());
    let raw: Vec<RecordPair> = candidates
        .iter()
        .map(|&(i, j)| RecordPair::new(left[i].clone(), right[j].clone()))
        .collect();
    let batch = EvalBatch {
        serialized: raw.iter().map(|p| ser.pair(p)).collect(),
        raw,
        attr_types: bench.attr_types.clone(),
    };
    let mut matcher = ZeroEr::new();
    let preds = matcher.predict(&batch).unwrap();

    let truth_set = pair_set(&truth);
    let tp = candidates
        .iter()
        .zip(&preds)
        .filter(|(c, &p)| p && truth_set.contains(c))
        .count();
    let predicted = preds.iter().filter(|&&p| p).count();
    let precision = tp as f64 / predicted.max(1) as f64;
    let recall = tp as f64 / truth.len().max(1) as f64;
    assert!(
        precision > 0.25 && recall > 0.4,
        "pipeline degenerated: P {precision:.2} R {recall:.2}"
    );
}

#[test]
fn blockers_agree_on_obvious_duplicates() {
    // Records that are byte-identical must survive every blocker.
    let rec = |id: u64, s: &str| Record::new(id, vec![em_core::AttrValue::from(s)]);
    let left = vec![
        rec(0, "unique sapphire gadget"),
        rec(1, "other thing entirely"),
    ];
    let right = vec![rec(10, "unique sapphire gadget")];
    for blocker in [
        Box::new(TokenBlocker::default()) as Box<dyn Blocker>,
        Box::new(QGramBlocker::default()),
    ] {
        let c = blocker.candidates(&left, &right);
        assert!(
            c.contains(&(0, 0)),
            "blocker missed an exact duplicate: {c:?}"
        );
    }
}
