//! Integration of the frozen-LLM zoo with the MatchGPT matcher and the
//! demonstration machinery (the Table 4 experiment's moving parts).

use cross_dataset_em::prelude::*;
use em_core::{evaluate_on_target, EvalConfig};
use em_lm::{pretrain_tier, PretrainCorpus};
use std::sync::Arc;

fn corpus() -> PretrainCorpus {
    PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(2_500, 0),
    }
}

#[test]
fn one_pretrained_tier_serves_all_demo_strategies() {
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let split = lodo_split(&suite, DatasetId::Beer).unwrap();
    let llm = Arc::new(pretrain_tier(LlmTier::Gpt4oMini, &corpus(), 0));
    let cfg = EvalConfig::quick(1, 200);
    let mut scores = Vec::new();
    for strategy in [
        DemoStrategy::None,
        DemoStrategy::HandPicked,
        DemoStrategy::Random,
    ] {
        let mut matcher = MatchGpt::with_llm(llm.clone(), strategy);
        let score = evaluate_on_target(&mut matcher, &split, &cfg).unwrap();
        scores.push((strategy, score.summary().mean));
    }
    // All strategies produce valid scores from the shared frozen model.
    for (s, f1) in &scores {
        assert!((0.0..=100.0).contains(f1), "{s:?}: {f1}");
    }
}

#[test]
fn demonstrations_come_from_the_transfer_pool_only() {
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let split = lodo_split(&suite, DatasetId::Itam).unwrap();
    let llm = Arc::new(pretrain_tier(LlmTier::Gpt35Turbo, &corpus(), 0));
    let mut matcher = MatchGpt::with_llm(llm, DemoStrategy::Random);
    matcher.fit(&split, 0).unwrap();
    let demos = matcher.demonstrations();
    assert_eq!(demos.len(), 3);
    assert_eq!(demos.iter().filter(|d| d.label).count(), 1);
    // ITAM records carry the music-domain serialization (8 attributes →
    // 7 separators); transfer demos must come from other datasets.
    for d in demos {
        let commas = d.pair.left.matches(", ").count();
        assert_ne!(
            commas, 7,
            "demo looks like a target (ITAM) record: {}",
            d.pair.left
        );
    }
}

#[test]
fn zero_shot_prompting_never_mutates_the_model() {
    // Two consecutive evaluations give identical predictions: prompting is
    // a pure forward pass.
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let split = lodo_split(&suite, DatasetId::Zoye).unwrap();
    let llm = Arc::new(pretrain_tier(LlmTier::Solar, &corpus(), 0));
    let cfg = EvalConfig::quick(2, 150);
    let mut matcher = MatchGpt::with_llm(llm, DemoStrategy::None);
    let a = evaluate_on_target(&mut matcher, &split, &cfg).unwrap();
    let b = evaluate_on_target(&mut matcher, &split, &cfg).unwrap();
    assert_eq!(a.per_seed_f1, b.per_seed_f1);
}

#[test]
fn capability_tiers_order_on_held_out_corpus() {
    // The substitution's core promise: the strongest tier generalizes
    // better than the weakest on unseen corpus pairs.
    let train = corpus();
    let heldout = cross_dataset_em::datagen::pretrain_corpus(600, 77);
    let weak = pretrain_tier(LlmTier::Gpt35Turbo, &train, 0);
    let strong = pretrain_tier(LlmTier::Gpt4, &train, 0);
    let pairs: Vec<_> = heldout.iter().map(|(p, _)| p.clone()).collect();
    let labels: Vec<bool> = heldout.iter().map(|(_, y)| *y).collect();
    let f1 = |llm: &em_lm::PretrainedLlm| {
        let preds: Vec<bool> = llm
            .score_batch(&pairs, &[])
            .into_iter()
            .map(|s| s >= 0.5)
            .collect();
        em_core::f1_percent(&preds, &labels).expect("aligned predictions")
    };
    let (fw, fs) = (f1(&weak), f1(&strong));
    assert!(
        fs > fw + 2.0,
        "GPT-4 tier {fs:.1} must beat GPT-3.5 tier {fw:.1}"
    );
}
