//! Cross-crate invariants of the study: Table 1 statistics, leakage
//! freedom, matcher metadata consistency with the paper's tables, and the
//! hardware/cost pipeline agreeing end to end.

use cross_dataset_em::prelude::*;
use em_core::spec_of;

#[test]
fn generated_suite_reproduces_table1_exactly() {
    let suite = cross_dataset_em::datagen::generate_suite(0);
    assert_eq!(suite.len(), 11);
    for bench in &suite {
        let spec = spec_of(bench.id);
        assert_eq!(bench.arity(), spec.attrs, "{}", bench.id);
        assert_eq!(bench.positives(), spec.positives, "{}", bench.id);
        assert_eq!(bench.negatives(), spec.negatives, "{}", bench.id);
    }
}

#[test]
fn suite_has_zero_tuple_leakage() {
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let report = cross_dataset_em::datagen::audit(&suite);
    assert!(report.is_clean(), "{:?}", report.joins);
}

#[test]
fn matcher_metadata_matches_table2_and_table3() {
    // Names and claimed parameter counts as printed in the paper.
    let corpus = em_lm::PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(200, 0),
    };
    let cases: Vec<(Box<dyn Matcher>, &str, Option<f64>)> = vec![
        (Box::new(StringSim::new()), "StringSim", None),
        (Box::new(ZeroEr::new()), "ZeroER", None),
        (Box::new(Ditto::new()), "Ditto", Some(110.0)),
        (Box::new(Unicorn::new()), "Unicorn", Some(143.0)),
        (
            Box::new(AnyMatch::new(AnyMatchBackbone::Gpt2)),
            "AnyMatch [GPT-2]",
            Some(124.0),
        ),
        (
            Box::new(AnyMatch::new(AnyMatchBackbone::T5)),
            "AnyMatch [T5]",
            Some(220.0),
        ),
        (
            Box::new(AnyMatch::new(AnyMatchBackbone::Llama32)),
            "AnyMatch [LLaMA3.2]",
            Some(1_300.0),
        ),
        (Box::new(Jellyfish::new()), "Jellyfish", Some(13_000.0)),
    ];
    let _ = corpus;
    for (matcher, name, params) in cases {
        assert_eq!(matcher.name(), name);
        assert_eq!(matcher.params_millions(), params, "{name}");
    }
}

#[test]
fn hardware_and_cost_pipelines_compose() {
    // Simulator throughputs → cost table: same structure as the paper.
    use cross_dataset_em::hardware::{deploy, Machine, TABLE5_MODELS};
    let node = Machine::hpc_node();
    let throughputs: Vec<(&str, f64)> = TABLE5_MODELS
        .iter()
        .map(|m| (m.name, deploy(m, &node).tokens_per_s))
        .collect();
    let rows = cross_dataset_em::cost::table6(&throughputs);
    assert_eq!(rows.len(), 12);
    assert_eq!(rows.first().unwrap().label, "MatchGPT [GPT-4]");
    assert!(rows.last().unwrap().label.contains("Ditto"));
    let ratio = rows.first().unwrap().usd_per_1k_tokens / rows.last().unwrap().usd_per_1k_tokens;
    assert!(ratio > 1_000.0, "GPT-4/Ditto cost ratio {ratio:.0}");
}

#[test]
fn domain_difficulty_profile_holds_for_parameter_free_methods() {
    // The qualitative shape the study's Finding 1 rests on: ZeroER is far
    // stronger on the clean citation data (DBAC) than on the
    // overlapping-value music data (ITAM).
    use em_core::{evaluate_on_target, lodo_split, EvalConfig};
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let cfg = EvalConfig::quick(1, 600);
    let mut zeroer = ZeroEr::new();
    let dbac = evaluate_on_target(
        &mut zeroer,
        &lodo_split(&suite, DatasetId::Dbac).unwrap(),
        &cfg,
    )
    .unwrap();
    let itam = evaluate_on_target(
        &mut zeroer,
        &lodo_split(&suite, DatasetId::Itam).unwrap(),
        &cfg,
    )
    .unwrap();
    assert!(
        dbac.summary().mean > itam.summary().mean + 20.0,
        "DBAC {} must far exceed ITAM {}",
        dbac.summary(),
        itam.summary()
    );
}

#[test]
fn repetition_protocol_reports_nonzero_variance_for_lms() {
    // Column shuffling must actually induce per-seed variation for a
    // sequence-sensitive model (Section 2.2's motivation).
    use em_core::{evaluate_on_target, lodo_split, EvalConfig};
    let suite = cross_dataset_em::datagen::generate_suite(0);
    let corpus = em_lm::PretrainCorpus {
        pairs: cross_dataset_em::datagen::pretrain_corpus(1_500, 0),
    };
    let split = lodo_split(&suite, DatasetId::Itam).unwrap();
    let mut matcher = Ditto::pretrained(&corpus);
    let score = evaluate_on_target(&mut matcher, &split, &EvalConfig::quick(3, 250)).unwrap();
    let distinct: std::collections::HashSet<String> = score
        .per_seed_f1
        .iter()
        .map(|f| format!("{f:.3}"))
        .collect();
    assert!(
        distinct.len() > 1,
        "seeds produced identical F1: {:?}",
        score.per_seed_f1
    );
}
